"""Unit tests for the Lublin-Feitelson workload model."""

import numpy as np
import pytest

from repro.workload.lublin import (
    LublinModel,
    daily_cycle_weight,
    generate_lublin_trace,
    sample_arrivals,
    sample_runtimes,
    sample_sizes,
)


def test_deterministic_for_seed():
    a = generate_lublin_trace(LublinModel(n_jobs=100), rng=5)
    b = generate_lublin_trace(LublinModel(n_jobs=100), rng=5)
    assert [(j.submit_time, j.runtime, j.procs) for j in a] == [
        (j.submit_time, j.runtime, j.procs) for j in b
    ]


def test_serial_fraction_matches_parameter():
    model = LublinModel(n_jobs=4000, prob_serial=0.24)
    rng = np.random.default_rng(1)
    sizes = sample_sizes(rng, model, model.n_jobs)
    serial = np.mean(sizes == 1)
    # All serial draws plus a few parallel draws that round to 1.
    assert serial == pytest.approx(0.24, abs=0.07)


def test_sizes_bounded_and_power2_heavy():
    model = LublinModel(n_jobs=4000, max_procs=64)
    rng = np.random.default_rng(2)
    sizes = sample_sizes(rng, model, model.n_jobs)
    assert sizes.min() >= 1
    assert sizes.max() <= 64
    parallel = sizes[sizes > 1]
    pow2 = np.mean((parallel & (parallel - 1)) == 0)
    assert pow2 > 0.5  # strong power-of-two clustering


def test_runtime_bounds_and_size_coupling():
    model = LublinModel(n_jobs=6000)
    rng = np.random.default_rng(3)
    small = sample_runtimes(rng, model, np.full(model.n_jobs, 1))
    large = sample_runtimes(rng, model, np.full(model.n_jobs, 128))
    assert small.min() >= model.min_runtime
    assert small.max() <= model.max_runtime
    # pa < 0: larger jobs use the long gamma component LESS often, and the
    # published parameters make the "long" component the big-log one.
    assert np.median(small) != pytest.approx(np.median(large), rel=0.01)


def test_arrivals_start_at_zero_and_increase():
    model = LublinModel(n_jobs=500)
    rng = np.random.default_rng(4)
    submits = sample_arrivals(rng, model, model.n_jobs)
    assert submits[0] == 0.0
    assert np.all(np.diff(submits) > 0)


def test_daily_cycle_peaks_at_peak_hour():
    model = LublinModel()
    hours = np.arange(24.0)
    weights = daily_cycle_weight(hours, model)
    assert hours[int(np.argmax(weights))] == model.cycle_peak_hour
    assert weights.min() >= 1.0 - model.cycle_amplitude - 1e-9


def test_arrival_rate_follows_cycle():
    # Count arrivals by hour-of-day: the peak hours must out-draw the trough.
    model = LublinModel(n_jobs=8000, arrival_scale=300.0, cycle_amplitude=0.8)
    rng = np.random.default_rng(6)
    submits = sample_arrivals(rng, model, model.n_jobs)
    hours = (submits / 3600.0) % 24.0
    peak = np.sum((hours > 11) & (hours < 17))
    trough = np.sum((hours > 23) | (hours < 5))
    assert peak > trough


def test_trace_is_valid_workload():
    jobs = generate_lublin_trace(LublinModel(n_jobs=200, max_procs=32), rng=7)
    assert len(jobs) == 200
    assert all(1 <= j.procs <= 32 for j in jobs)
    assert all(j.estimate > 0 for j in jobs)
    over = np.mean([j.trace_estimate > j.runtime for j in jobs])
    assert over == pytest.approx(0.92, abs=0.06)


def test_invalid_job_count():
    with pytest.raises(ValueError):
        generate_lublin_trace(LublinModel(n_jobs=0), rng=0)


def test_lublin_jobs_run_through_a_policy():
    from repro.economy.models import make_model
    from repro.policies import make_policy
    from repro.service.provider import CommercialComputingService
    from repro.workload.qos import QoSSpec, assign_qos

    jobs = generate_lublin_trace(LublinModel(n_jobs=60, max_procs=32), rng=8)
    assign_qos(jobs, QoSSpec(), rng=8)
    service = CommercialComputingService(
        make_policy("EDF-BF"), make_model("bid"), total_procs=32
    )
    objs = service.run(jobs).objectives()
    assert 0.0 <= objs.sla <= 100.0
