"""Unit tests for the table/figure generators and the Fig. 1 sample data."""

import pytest

from repro.core.riskplot import RiskPlot
from repro.experiments.figures import figure_1, figure_2
from repro.experiments.sampledata import (
    SAMPLE_POLICY_POINTS,
    TABLE_II_PUBLISHED,
    TABLE_III_RULES_ORDER,
    TABLE_IV_PUBLISHED_ORDER,
    sample_risk_plot,
)
from repro.experiments.tables import table_i, table_ii, table_iii, table_iv, table_v, table_vi


def test_sample_plot_matches_published_table_ii():
    plot = sample_risk_plot()
    for policy, (max_p, min_p, max_v, min_v) in TABLE_II_PUBLISHED.items():
        s = plot.series[policy]
        assert s.max_performance == pytest.approx(max_p), policy
        assert s.min_performance == pytest.approx(min_p), policy
        assert s.max_volatility == pytest.approx(max_v), policy
        assert s.min_volatility == pytest.approx(min_v), policy


def test_sample_plot_five_scenarios_each():
    for policy, points in SAMPLE_POLICY_POINTS.items():
        assert len(points) == 5, policy


def test_figure_1_is_the_sample_plot():
    plot = figure_1()
    assert isinstance(plot, RiskPlot)
    assert sorted(plot.policies()) == list("ABCDEFGH")
    assert plot.series["A"].is_ideal()


def test_figure_2_penalty_shape():
    data = figure_2()
    times, utils = data["time"], data["utility"]
    assert len(times) == len(utils)
    # Flat at the full budget until the deadline...
    before = [u for t, u in zip(times, utils) if t <= data["deadline_time"]]
    assert all(u == pytest.approx(data["budget"]) for u in before)
    # ...then strictly decreasing and eventually negative (unbounded).
    after = [u for t, u in zip(times, utils) if t > data["deadline_time"]]
    assert after == sorted(after, reverse=True)
    assert after[-1] < 0.0


def test_table_i_contents():
    rows = table_i()
    assert len(rows) == 4
    assert rows[0]["abbreviation"] == "wait"
    assert rows[0]["focus"] == "User-centric"
    assert rows[3]["abbreviation"] == "profitability"
    assert rows[3]["focus"] == "Provider-centric"


def test_table_ii_differences():
    rows = {r["policy"]: r for r in table_ii()}
    assert rows["C"]["performance_difference"] == pytest.approx(0.5)
    assert rows["C"]["volatility_difference"] == pytest.approx(0.7)
    assert rows["A"]["performance_difference"] == 0.0
    assert rows["B"]["volatility_difference"] == pytest.approx(0.3)


def test_table_iii_follows_stated_rules():
    order = [r["policy"] for r in table_iii()]
    assert order == TABLE_III_RULES_ORDER
    # A is the ideal policy: rank 1 with NA gradient.
    assert table_iii()[0]["gradient"] == "NA"


def test_table_iv_matches_published_ranking():
    order = [r["policy"] for r in table_iv()]
    assert order == TABLE_IV_PUBLISHED_ORDER


def test_table_v_policy_matrix():
    rows = {r["policy"]: r for r in table_v()}
    assert len(rows) == 7
    assert rows["SJF-BF"]["commodity_market_model"] and not rows["SJF-BF"]["bid_based_model"]
    assert rows["LibraRiskD"]["bid_based_model"] and not rows["LibraRiskD"]["commodity_market_model"]
    assert rows["FCFS-BF"]["commodity_market_model"] and rows["FCFS-BF"]["bid_based_model"]
    assert rows["FirstReward"]["primary_parameter"] == "budget with penalty"


def test_table_vi_scenario_listing():
    rows = table_vi()
    assert len(rows) == 12
    workload = next(r for r in rows if r["scenario"] == "workload")
    assert workload["values"] == [0.02, 0.10, 0.25, 0.50, 0.75, 1.00]
    assert workload["default"] == 0.25
