"""Unit tests for multi-seed replication."""

import math

import pytest

from repro.core.objectives import Objective
from repro.experiments.replication import (
    ReplicatedAnalysis,
    ReplicateStats,
    run_replicated,
    t_interval,
)
from repro.experiments.scenarios import ExperimentConfig, scenario_by_name

SMALL = ExperimentConfig(n_jobs=30, total_procs=32)
SCEN = [scenario_by_name("job mix")]


def test_t_interval_basics():
    stats = t_interval([0.5, 0.6, 0.7])
    assert stats.mean == pytest.approx(0.6)
    assert stats.n == 3
    assert stats.low < 0.6 < stats.high
    # Known value: t(0.975, df=2) = 4.3027, std = 0.1.
    assert stats.ci_halfwidth == pytest.approx(4.3027 * 0.1 / math.sqrt(3), rel=1e-3)


def test_t_interval_single_value_infinite_ci():
    stats = t_interval([0.4])
    assert stats.mean == 0.4
    assert stats.ci_halfwidth == float("inf")


def test_t_interval_empty_raises():
    with pytest.raises(ValueError):
        t_interval([])


def test_replicate_stats_str():
    s = ReplicateStats(mean=0.5, std=0.1, ci_halfwidth=0.05, n=4)
    assert "0.500 ± 0.050" in str(s)


def test_run_replicated_shapes():
    analysis = run_replicated(
        ["FCFS-BF", "Libra"], "bid", SMALL, "A", SCEN, seeds=(0, 1)
    )
    assert len(analysis.grids) == 2
    stats = analysis.performance_stats(Objective.SLA, "FCFS-BF", "job mix")
    assert stats.n == 2
    assert 0.0 <= stats.mean <= 1.0


def test_seeds_produce_different_replicates():
    analysis = run_replicated(
        ["FCFS-BF"], "bid", SMALL, "A", SCEN, seeds=(0, 1, 2)
    )
    values = [
        g.separate[Objective.SLA]["FCFS-BF"]["job mix"].performance
        for g in analysis.grids
    ]
    assert len(set(round(v, 9) for v in values)) > 1


def test_dominance_fraction():
    analysis = run_replicated(
        ["FCFS-BF", "Libra"], "bid", SMALL, "A", SCEN, seeds=(0, 1)
    )
    d = analysis.dominance(Objective.WAIT, "Libra", "FCFS-BF")
    # Libra waits 0; FCFS-BF queues: Libra should dominate in every cell
    # (unless FCFS also hits zero wait in a tiny replicate).
    assert 0.0 <= d <= 1.0


def test_summary_rows():
    analysis = run_replicated(
        ["FCFS-BF"], "bid", SMALL, "A", SCEN, seeds=(0, 1)
    )
    rows = analysis.summary_rows(Objective.SLA)
    assert len(rows) == 1
    assert rows[0]["policy"] == "FCFS-BF"
    assert "perf_ci95" in rows[0]


def test_mismatched_replicates_rejected():
    a = run_replicated(["FCFS-BF"], "bid", SMALL, "A", SCEN, seeds=(0,)).grids[0]
    b = run_replicated(["Libra"], "bid", SMALL, "A", SCEN, seeds=(0,)).grids[0]
    with pytest.raises(ValueError):
        ReplicatedAnalysis(grids=[a, b])
    with pytest.raises(ValueError):
        ReplicatedAnalysis(grids=[])
