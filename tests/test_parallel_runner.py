"""Unit tests for the multiprocessing grid runner."""

import pytest

from repro.core.objectives import Objective
from repro.experiments.parallel import default_workers, run_grid_parallel
from repro.experiments.runner import RunCache, run_grid
from repro.experiments.scenarios import ExperimentConfig, scenario_by_name

SMALL = ExperimentConfig(n_jobs=30, total_procs=32)
SCENARIOS = [scenario_by_name("job mix"), scenario_by_name("workload")]
POLICIES = ["FCFS-BF", "Libra"]


def test_default_workers_positive():
    assert default_workers() >= 1


def test_single_worker_falls_back_to_serial():
    a = run_grid_parallel(POLICIES, "bid", SMALL, "A", SCENARIOS, n_workers=1)
    b = run_grid(POLICIES, "bid", SMALL, "A", SCENARIOS)
    assert a.separate == b.separate


@pytest.mark.slow
def test_parallel_matches_serial_exactly():
    serial = run_grid(POLICIES, "bid", SMALL, "A", SCENARIOS)
    parallel = run_grid_parallel(
        POLICIES, "bid", SMALL, "A", SCENARIOS, n_workers=2
    )
    assert parallel.policies == serial.policies
    assert parallel.scenarios == serial.scenarios
    for objective in Objective:
        for policy in POLICIES:
            for scenario in parallel.scenarios:
                p = parallel.separate[objective][policy][scenario]
                s = serial.separate[objective][policy][scenario]
                assert p.performance == pytest.approx(s.performance, abs=1e-12)
                assert p.volatility == pytest.approx(s.volatility, abs=1e-12)


def test_serial_and_single_worker_cache_statistics_match():
    serial_cache = RunCache()
    run_grid(POLICIES, "bid", SMALL, "A", SCENARIOS, serial_cache)
    parallel_cache = RunCache()
    run_grid_parallel(
        POLICIES, "bid", SMALL, "A", SCENARIOS, n_workers=1, cache=parallel_cache
    )
    assert (parallel_cache.hits, parallel_cache.misses) == (
        serial_cache.hits,
        serial_cache.misses,
    )
    assert len(parallel_cache) == len(serial_cache)


@pytest.mark.slow
def test_parallel_cache_statistics_match_serial():
    """The pool runner must report the same hit/miss accounting as the
    serial runner — on a cold cache and on a fully warm one."""
    serial_cache = RunCache()
    run_grid(POLICIES, "bid", SMALL, "A", SCENARIOS, serial_cache)
    parallel_cache = RunCache()
    run_grid_parallel(
        POLICIES, "bid", SMALL, "A", SCENARIOS, n_workers=2, cache=parallel_cache
    )
    assert (parallel_cache.hits, parallel_cache.misses) == (
        serial_cache.hits,
        serial_cache.misses,
    )
    assert len(parallel_cache) == len(serial_cache)
    # Warm re-run: both paths see pure hits, zero new misses.
    run_grid(POLICIES, "bid", SMALL, "A", SCENARIOS, serial_cache)
    run_grid_parallel(
        POLICIES, "bid", SMALL, "A", SCENARIOS, n_workers=2, cache=parallel_cache
    )
    assert (parallel_cache.hits, parallel_cache.misses) == (
        serial_cache.hits,
        serial_cache.misses,
    )


@pytest.mark.slow
def test_parallel_populates_shared_cache():
    cache = RunCache()
    run_grid_parallel(POLICIES, "bid", SMALL, "A", SCENARIOS, n_workers=2, cache=cache)
    before = len(cache)
    assert before > 0
    # A second call over the same grid does zero new simulations.
    run_grid_parallel(POLICIES, "bid", SMALL, "A", SCENARIOS, n_workers=2, cache=cache)
    assert len(cache) == before
