"""Unit tests for the ablation baselines: plain FCFS, conservative
backfilling, and the admission-control switch."""

import pytest

from repro.economy.models import make_model
from repro.policies import make_policy
from repro.policies.conservative_bf import ConservativeBackfill
from repro.policies.fcfs import FCFSPlain
from repro.policies.fcfs_bf import FCFSBackfill
from repro.service.provider import CommercialComputingService
from repro.workload.job import Job


def make_job(job_id, submit=0.0, runtime=100.0, estimate=None, procs=1,
             deadline=1e6, budget=1e9):
    return Job(job_id=job_id, submit_time=submit, runtime=runtime,
               estimate=estimate if estimate is not None else runtime,
               procs=procs, deadline=deadline, budget=budget)


def run(policy, jobs, procs=4):
    svc = CommercialComputingService(policy, make_model("bid"), total_procs=procs)
    return {o.job_id: o for o in svc.run(jobs).outcomes}


BLOCKING_WORKLOAD = [
    # Head blocked at t=100; a short narrow job sits behind it.
    lambda: make_job(1, submit=0.0, runtime=100.0, procs=3),
    lambda: make_job(2, submit=1.0, runtime=500.0, procs=4),
    lambda: make_job(3, submit=2.0, runtime=50.0, procs=1),
]


def workload():
    return [f() for f in BLOCKING_WORKLOAD]


def test_plain_fcfs_never_backfills():
    out = run(FCFSPlain(), workload())
    # Job 3 must wait behind the head even though a processor is free.
    assert out[3].start_time == 600.0


def test_easy_backfills_where_plain_fcfs_idles():
    out = run(FCFSBackfill(), workload())
    assert out[3].start_time == 2.0


def test_conservative_matches_easy_on_harmless_backfill():
    # Job 3 (50s, 1 proc) cannot delay anyone: conservative also starts it.
    out = run(ConservativeBackfill(), workload())
    assert out[3].start_time == 2.0
    assert out[2].start_time == 100.0


def test_conservative_blocks_backfill_that_delays_any_reservation():
    jobs = [
        make_job(1, submit=0.0, runtime=100.0, procs=3),
        make_job(2, submit=1.0, runtime=500.0, procs=4),   # reservation @100
        make_job(3, submit=2.0, runtime=500.0, procs=2),   # reservation @600
        # 1-proc job for 450s: EASY lets it delay job 3's *unreserved* start;
        # conservative gave job 3 a reservation at t=600 on 2 procs, and the
        # candidate fits beside it, so both disciplines differ only via
        # planning. The giveaway case is a job that overruns the head shadow.
        make_job(4, submit=3.0, runtime=450.0, procs=1),
    ]
    easy = run(FCFSBackfill(), [j.clone() for j in jobs])
    cons = run(ConservativeBackfill(), [j.clone() for j in jobs])
    # Neither discipline may delay the head reservation.
    assert easy[2].start_time == 100.0
    assert cons[2].start_time == 100.0
    # Conservative guarantees job 3 its planned start too.
    assert cons[3].start_time <= easy[3].start_time + 1e-9


def test_conservative_head_never_delayed_by_backfill():
    jobs = [
        make_job(1, submit=0.0, runtime=100.0, procs=3),
        make_job(2, submit=1.0, runtime=500.0, procs=4),
        make_job(3, submit=2.0, runtime=400.0, procs=1),  # would delay head
    ]
    out = run(ConservativeBackfill(), jobs)
    assert out[2].start_time == 100.0
    assert out[3].start_time >= 100.0


def test_admission_control_off_accepts_doomed_jobs():
    jobs = [
        make_job(1, submit=0.0, runtime=100.0, procs=4),
        make_job(2, submit=1.0, runtime=100.0, procs=4, deadline=50.0),  # doomed
    ]
    with_ac = run(FCFSBackfill(), [j.clone() for j in jobs])
    without_ac = run(FCFSBackfill(admission_control=False), [j.clone() for j in jobs])
    assert not with_ac[2].accepted
    assert without_ac[2].accepted
    assert not without_ac[2].deadline_met


def test_admission_control_off_degrades_reliability():
    # A stream of tight-deadline jobs through a busy machine.
    jobs = [make_job(i, submit=float(i), runtime=100.0, procs=4,
                     deadline=150.0) for i in range(1, 8)]
    svc = CommercialComputingService(
        FCFSBackfill(admission_control=False), make_model("bid"), total_procs=4
    )
    objs = svc.run(jobs).objectives()
    assert objs.reliability < 100.0
    svc2 = CommercialComputingService(
        FCFSBackfill(), make_model("bid"), total_procs=4
    )
    objs2 = svc2.run([make_job(i, submit=float(i), runtime=100.0, procs=4,
                               deadline=150.0) for i in range(1, 8)]).objectives()
    assert objs2.reliability == 100.0


def test_registry_exposes_baselines():
    assert make_policy("FCFS").name == "FCFS"
    assert make_policy("Cons-BF").name == "Cons-BF"


def test_conservative_full_workload_consistency():
    # Every job resolves (no stuck queue) on a random-ish workload.
    jobs = [make_job(i, submit=float(3 * i), runtime=50.0 + 13 * (i % 5),
                     procs=1 + (i % 4)) for i in range(1, 30)]
    out = run(ConservativeBackfill(), jobs, procs=4)
    assert len(out) == 29
    assert all(o.accepted or not o.accepted for o in out.values())
    assert all(o.finish_time is not None for o in out.values() if o.accepted)
