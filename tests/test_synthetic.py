"""Unit tests for the synthetic SDSC-SP2-like workload generator."""

import numpy as np
import pytest

from repro.workload.synthetic import SDSC_SP2, TraceModel, generate_trace, trace_statistics


def test_determinism_for_same_seed():
    a = generate_trace(SDSC_SP2.scaled(200), rng=42)
    b = generate_trace(SDSC_SP2.scaled(200), rng=42)
    assert [(j.submit_time, j.runtime, j.procs) for j in a] == [
        (j.submit_time, j.runtime, j.procs) for j in b
    ]


def test_different_seeds_differ():
    a = generate_trace(SDSC_SP2.scaled(50), rng=1)
    b = generate_trace(SDSC_SP2.scaled(50), rng=2)
    assert [j.runtime for j in a] != [j.runtime for j in b]


def test_first_arrival_at_zero_and_sorted():
    jobs = generate_trace(SDSC_SP2.scaled(100), rng=0)
    assert jobs[0].submit_time == 0.0
    submits = [j.submit_time for j in jobs]
    assert submits == sorted(submits)


def test_calibration_matches_published_statistics():
    jobs = generate_trace(SDSC_SP2, rng=0)
    stats = trace_statistics(jobs)
    assert stats["n_jobs"] == 5000
    # Published: mean inter-arrival 1969 s, mean runtime 8671 s, mean 17 CPUs.
    assert stats["mean_interarrival"] == pytest.approx(1969.0, rel=0.10)
    assert stats["mean_runtime"] == pytest.approx(8671.0, rel=0.10)
    assert stats["mean_procs"] == pytest.approx(17.0, rel=0.15)
    assert stats["max_procs"] <= 128
    # Published: 92% of estimates are over-estimates.
    assert stats["overestimate_fraction"] == pytest.approx(0.92, abs=0.03)


def test_runtime_floor_respected():
    model = TraceModel(n_jobs=500, min_runtime=60.0)
    jobs = generate_trace(model, rng=3)
    assert min(j.runtime for j in jobs) >= 60.0


def test_procs_within_bounds():
    model = TraceModel(n_jobs=500, max_procs=32, proc_exponent_max=5.0)
    jobs = generate_trace(model, rng=3)
    assert all(1 <= j.procs <= 32 for j in jobs)


def test_estimates_start_at_trace_values():
    jobs = generate_trace(SDSC_SP2.scaled(100), rng=0)
    assert all(j.estimate == j.trace_estimate for j in jobs)


def test_invalid_job_count_raises():
    with pytest.raises(ValueError):
        generate_trace(SDSC_SP2.scaled(0), rng=0)


def test_scaled_preserves_other_fields():
    model = SDSC_SP2.scaled(10)
    assert model.n_jobs == 10
    assert model.mean_runtime == SDSC_SP2.mean_runtime


def test_generator_accepts_generator_instance():
    rng = np.random.default_rng(5)
    jobs = generate_trace(SDSC_SP2.scaled(10), rng=rng)
    assert len(jobs) == 10


def test_statistics_of_empty_list():
    assert trace_statistics([]) == {"n_jobs": 0}
