"""Market sweeps through the RunStore: dedupe, checkpoint, resume, shard."""

import json

import pytest

from repro.experiments.marketsweep import (
    MARKET_RUN_FORMAT,
    MarketConfig,
    MarketScenario,
    admission_market_scenario,
    assemble_market_sweep,
    default_market_config,
    execute_market_plan,
    market_plan,
    market_run_key,
    mtbf_market_scenario,
    run_market_config,
    run_market_sweep,
)
from repro.experiments.runstore import RunStore, StoreError


def small_config(**overrides):
    params = {"n_users": 50, "n_jobs": 120}
    params.update(overrides)
    return default_market_config(**params)


# -- config & addressing -------------------------------------------------------

def test_market_config_validation():
    with pytest.raises(ValueError):
        MarketConfig(providers=())
    with pytest.raises(TypeError):
        MarketConfig(providers=("not-a-spec",))
    with pytest.raises(ValueError):
        default_market_config(n_users=0)
    with pytest.raises(ValueError):
        default_market_config(n_jobs=-1)


def test_market_config_roundtrip():
    config = small_config(seed=7)
    assert MarketConfig.from_dict(config.to_dict()) == config
    with pytest.raises(StoreError):
        MarketConfig.from_dict({**config.to_dict(), "bogus": 1})


def test_market_run_key_is_content_addressed():
    a = small_config()
    assert market_run_key(a) == market_run_key(small_config())
    assert market_run_key(a) != market_run_key(small_config(seed=1))
    assert market_run_key(a) != market_run_key(a.with_risky(mtbf=3600.0))


def test_market_run_key_ignores_backend():
    # The parity contract makes the result backend-invariant, so both
    # backends must address the same document.
    from dataclasses import replace

    a = small_config()
    assert market_run_key(a) == market_run_key(replace(a, backend="agents"))


def test_scenario_validation():
    with pytest.raises(ValueError):
        MarketScenario("x", "not-a-knob", (1.0,))
    with pytest.raises(ValueError):
        MarketScenario("x", "mtbf", ())


def test_scenario_varies_only_the_risky_provider():
    base = small_config()
    configs = admission_market_scenario().configs(base)
    assert [c.providers[0].admission for c in configs] == ["greedy", "deadline"]
    assert all(c.providers[1] == base.providers[1] for c in configs)


# -- document layer ------------------------------------------------------------

def test_document_layer_roundtrip(tmp_path):
    store = RunStore(tmp_path)
    config = small_config()
    digest = market_run_key(config)
    assert store.get_document(digest, MARKET_RUN_FORMAT) is None
    doc = run_market_config(config)
    store.put_document(digest, doc)
    # A fresh store reads it back from disk, format-checked.
    again = RunStore(tmp_path).get_document(digest, MARKET_RUN_FORMAT)
    assert again is not None
    assert again["providers"] == doc["providers"]
    assert again["key"] == digest
    # The wrong format marker is a miss, not a crash.
    assert RunStore(tmp_path).get_document(digest, "repro-run") is None


def test_document_requires_format_marker(tmp_path):
    store = RunStore(tmp_path)
    with pytest.raises(StoreError):
        store.put_document("ab" * 32, {"providers": {}})


def test_corrupt_document_is_quarantined(tmp_path):
    store = RunStore(tmp_path)
    config = small_config()
    digest = market_run_key(config)
    store.put_document(digest, run_market_config(config))
    path = store.document_path(digest)
    path.write_text("{truncated")
    fresh = RunStore(tmp_path)
    assert fresh.get_document(digest, MARKET_RUN_FORMAT) is None
    assert not path.exists()
    assert list((tmp_path / "quarantine").iterdir())


def test_documents_and_runs_share_a_cache_dir(tmp_path):
    # Market documents must not leak into the ObjectiveSet-run digests.
    store = RunStore(tmp_path)
    config = small_config()
    digest = market_run_key(config)
    store.put_document(digest, run_market_config(config))
    assert store.document_digests() == {digest}
    assert store.disk_digests() == set()


# -- plan → execute → assemble -------------------------------------------------

def test_execute_deduplicates_plan(tmp_path):
    store = RunStore(tmp_path)
    base = small_config()
    plan = market_plan(mtbf_market_scenario((None, 3600.0)), base)
    execution = execute_market_plan(plan + plan, store)
    assert execution.accesses == 4
    assert execution.misses == 2
    assert execution.hits == 2
    assert execution.executed == 2
    assert execution.complete


def test_sweep_resume_is_bit_identical(tmp_path):
    base = small_config()
    first = run_market_sweep(base, store=RunStore(tmp_path))
    assert first.execution.executed == len(first.scenario.levels)
    resumed = run_market_sweep(base, store=RunStore(tmp_path))
    assert resumed.execution.executed == 0
    assert resumed.execution.hits == len(first.scenario.levels)
    assert resumed.rows == first.rows
    assert resumed.table() == first.table()


def test_sharded_sweep_partitions_and_assembles(tmp_path):
    base = small_config()
    scenario = mtbf_market_scenario()
    plan = market_plan(scenario, base)
    shards = [
        execute_market_plan(plan, RunStore(tmp_path), shard=(i, 2))
        for i in range(2)
    ]
    assert sum(s.executed for s in shards) == len(plan)
    assert all(s.executed + s.deferred == s.misses for s in shards)
    # Any process sharing the cache dir can assemble the full result.
    merged = run_market_sweep(base, scenario=scenario, store=RunStore(tmp_path))
    assert merged.execution.executed == 0
    assert merged.complete
    reference = run_market_sweep(base, scenario=scenario)
    assert merged.rows == reference.rows


def test_shard_validation(tmp_path):
    with pytest.raises(ValueError):
        execute_market_plan([small_config()], RunStore(tmp_path), shard=(2, 2))


def test_incomplete_assembly_is_flagged(tmp_path):
    # Deterministic partial store: only the first level's document exists
    # (as if a peer shard owning the second level had not finished yet).
    base = small_config()
    scenario = mtbf_market_scenario((None, 3600.0))
    store = RunStore(tmp_path)
    first = scenario.configs(base)[0]
    store.put_document(market_run_key(first), run_market_config(first))
    result = assemble_market_sweep(store, scenario, base)
    assert not result.complete
    assert len(result.rows) == len(base.providers)
    assert "incomplete" in result.table()


# -- the §3 claim --------------------------------------------------------------

def test_unreliable_provider_loses_the_market(tmp_path):
    """Falling MTBF must cost the risky provider share, loyalty, revenue."""
    result = run_market_sweep(
        small_config(n_users=200, n_jobs=400),
        scenario=mtbf_market_scenario((None, 3600.0)),
        store=RunStore(tmp_path),
    )
    risky = {row.level: row for row in result.rows if row.provider == "risky"}
    assert risky[3600.0].final_share < risky[None].final_share
    assert risky[3600.0].loyal_users < risky[None].loyal_users
    assert risky[3600.0].revenue < risky[None].revenue
    assert risky[3600.0].violated > risky[None].violated
    # The document on disk is plain JSON a human can read.
    digest = market_run_key(small_config(n_users=200, n_jobs=400))
    text = RunStore(tmp_path).document_path(digest).read_text()
    assert json.loads(text)["format"] == MARKET_RUN_FORMAT
