"""Unit tests for FCFS-BF, SJF-BF, EDF-BF (EASY backfilling + generous
admission control)."""

import pytest

from repro.economy.models import make_model
from repro.policies.edf_bf import EDFBackfill
from repro.policies.fcfs_bf import FCFSBackfill
from repro.policies.sjf_bf import SJFBackfill
from repro.service.provider import CommercialComputingService
from repro.workload.job import Job


def make_job(job_id, submit=0.0, runtime=100.0, estimate=None, procs=1,
             deadline=1e6, budget=1e9):
    return Job(job_id=job_id, submit_time=submit, runtime=runtime,
               estimate=estimate if estimate is not None else runtime,
               procs=procs, deadline=deadline, budget=budget)


def run(policy, jobs, model="bid", procs=4):
    svc = CommercialComputingService(policy, make_model(model), total_procs=procs)
    result = svc.run(jobs)
    return {o.job_id: o for o in result.outcomes}


def test_fcfs_orders_by_arrival():
    # All three jobs need the full machine; they must run in arrival order.
    jobs = [
        make_job(1, submit=0.0, procs=4),
        make_job(2, submit=1.0, procs=4),
        make_job(3, submit=2.0, procs=4),
    ]
    out = run(FCFSBackfill(), jobs)
    assert out[1].start_time == 0.0
    assert out[2].start_time == 100.0
    assert out[3].start_time == 200.0


def test_sjf_prefers_shortest_estimate():
    jobs = [
        make_job(1, submit=0.0, runtime=100.0, procs=4),
        make_job(2, submit=1.0, runtime=300.0, procs=4),
        make_job(3, submit=2.0, runtime=50.0, procs=4),
    ]
    out = run(SJFBackfill(), jobs)
    # Job 3 (shortest) beats job 2 once job 1 finishes.
    assert out[3].start_time == 100.0
    assert out[2].start_time == 150.0


def test_edf_prefers_earliest_deadline():
    jobs = [
        make_job(1, submit=0.0, runtime=100.0, procs=4),
        make_job(2, submit=1.0, runtime=100.0, procs=4, deadline=10_000.0),
        make_job(3, submit=2.0, runtime=100.0, procs=4, deadline=300.0),
    ]
    out = run(EDFBackfill(), jobs)
    assert out[3].start_time == 100.0
    assert out[2].start_time == 200.0


def test_easy_backfill_small_job_jumps_ahead():
    # Head job needs 4 procs at t=100; a 1-proc short job backfills now.
    jobs = [
        make_job(1, submit=0.0, runtime=100.0, procs=3),
        make_job(2, submit=1.0, runtime=500.0, procs=4),   # blocked head
        make_job(3, submit=2.0, runtime=50.0, procs=1),    # fits before shadow
    ]
    out = run(FCFSBackfill(), jobs)
    assert out[3].start_time == 2.0       # backfilled immediately
    assert out[2].start_time == 100.0     # head not delayed


def test_easy_backfill_does_not_delay_head():
    # A long 1-proc job may NOT backfill because it would overrun the shadow
    # time on a processor the head needs.
    jobs = [
        make_job(1, submit=0.0, runtime=100.0, procs=3),
        make_job(2, submit=1.0, runtime=500.0, procs=4),  # head, shadow t=100
        make_job(3, submit=2.0, runtime=400.0, procs=1),  # would delay head
    ]
    out = run(FCFSBackfill(), jobs)
    assert out[2].start_time == 100.0
    assert out[3].start_time == 600.0  # after the head, not before


def test_backfill_into_spare_processors():
    # Head needs 2 procs when 1 is free; at shadow, 3 are free -> spare 1.
    # A long 1-proc job can backfill into the spare processor.
    jobs = [
        make_job(1, submit=0.0, runtime=100.0, procs=3),
        make_job(2, submit=1.0, runtime=500.0, procs=2),   # head, shadow 100
        make_job(3, submit=2.0, runtime=10_000.0, procs=1),
    ]
    out = run(FCFSBackfill(), jobs)
    assert out[3].start_time == 2.0
    assert out[2].start_time == 100.0


def test_generous_admission_rejects_lapsed_deadline():
    jobs = [
        make_job(1, submit=0.0, runtime=100.0, procs=4),
        make_job(2, submit=1.0, runtime=10.0, procs=4, deadline=50.0),
    ]
    out = run(FCFSBackfill(), jobs)
    assert not out[2].accepted  # deadline lapsed at t=100 before it could run


def test_generous_admission_rejects_predicted_miss():
    jobs = [
        make_job(1, submit=0.0, runtime=100.0, procs=4),
        # At t=100 prediction: 100 + 200 > 0 + 250 -> reject.
        make_job(2, submit=0.0, runtime=200.0, procs=4, deadline=250.0),
    ]
    out = run(FCFSBackfill(), jobs)
    assert not out[2].accepted


def test_underestimate_slips_past_admission():
    # Estimate predicts on-time but the actual runtime misses the deadline:
    # the SLA is accepted yet unreliable (the paper's Set B effect).
    jobs = [make_job(1, runtime=200.0, estimate=100.0, deadline=150.0, procs=1)]
    out = run(FCFSBackfill(), jobs)
    assert out[1].accepted
    assert not out[1].deadline_met


def test_commodity_budget_rejection_applies():
    jobs = [make_job(1, runtime=100.0, budget=10.0)]
    out = run(FCFSBackfill(), jobs, model="commodity")
    assert not out[1].accepted


def test_acceptance_happens_at_start_not_submission():
    jobs = [
        make_job(1, submit=0.0, runtime=100.0, procs=4),
        make_job(2, submit=0.0, runtime=100.0, procs=4),
    ]
    policy = FCFSBackfill()
    svc = CommercialComputingService(policy, make_model("bid"), total_procs=4)
    result = svc.run(jobs)
    rec2 = next(r for r in result.records if r.job.job_id == 2)
    assert rec2.accept_time == 100.0  # examined only prior to execution
    assert rec2.start_time == 100.0


def test_queue_introspection():
    from repro.service.sla import SLARecord

    policy = FCFSBackfill()
    svc = CommercialComputingService(policy, make_model("bid"), total_procs=4)
    jobs = [make_job(1, procs=4, runtime=100.0), make_job(2, submit=1.0, procs=4, runtime=100.0)]
    for job in jobs:
        svc._records[job.job_id] = SLARecord(job=job)
        svc.sim.schedule_at(job.submit_time, policy.submit, job)
    svc.sim.run(until=50.0)  # job 1 running, job 2 still queued
    assert policy.queue_length == 1
    assert [j.job_id for j in policy.queued_jobs()] == [2]
