"""Property-based tests (hypothesis) for the risk-analysis core."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.integrated import equal_weights, integrated_risk
from repro.core.normalize import normalize_percentage, normalize_wait
from repro.core.objectives import Objective
from repro.core.separate import separate_risk
from repro.core.trend import Gradient, fit_trend

unit = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
unit_lists = st.lists(unit, min_size=1, max_size=24)


@given(unit_lists)
def test_separate_performance_bounded_by_extremes(results):
    r = separate_risk(results)
    assert min(results) - 1e-12 <= r.performance <= max(results) + 1e-12


@given(unit_lists)
def test_separate_volatility_bounded_by_half_range(results):
    # Population std of values in [a, b] is at most (b - a) / 2.
    r = separate_risk(results)
    half_range = (max(results) - min(results)) / 2
    assert r.volatility <= half_range + 1e-7


@given(unit_lists)
def test_separate_volatility_zero_iff_constant(results):
    r = separate_risk(results)
    if max(results) == min(results):
        # Eq. 6 computes E[x²] − μ²; cancellation leaves ~√ε noise.
        assert r.volatility <= 1e-7
    elif max(results) - min(results) > 1e-6:
        assert r.volatility > 0.0


@given(unit_lists)
def test_separate_matches_numpy_population_std(results):
    r = separate_risk(results)
    assert math.isclose(r.performance, float(np.mean(results)), abs_tol=1e-12)
    # Eq. 6 (E[x²] − μ²) and numpy's two-pass std agree up to √ε cancellation.
    assert math.isclose(r.volatility, float(np.std(results)), abs_tol=1e-7)


@given(unit_lists)
def test_separate_order_invariance(results):
    a = separate_risk(results)
    b = separate_risk(list(reversed(results)))
    assert math.isclose(a.performance, b.performance, abs_tol=1e-12)
    assert math.isclose(a.volatility, b.volatility, abs_tol=1e-12)


objective_subsets = st.lists(
    st.sampled_from(list(Objective)), min_size=1, max_size=4, unique=True
)


@given(
    objective_subsets,
    st.lists(st.tuples(unit, st.floats(0.0, 0.5)), min_size=4, max_size=4),
)
def test_integrated_is_convex_combination(objectives, stats):
    separate = {
        obj: __import__("repro.core.separate", fromlist=["SeparateRisk"]).SeparateRisk(
            *stats[i]
        )
        for i, obj in enumerate(objectives)
    }
    result = integrated_risk(separate)
    perfs = [separate[o].performance for o in objectives]
    vols = [separate[o].volatility for o in objectives]
    assert min(perfs) - 1e-9 <= result.performance <= max(perfs) + 1e-9
    assert min(vols) - 1e-9 <= result.volatility <= max(vols) + 1e-9


@given(objective_subsets)
def test_equal_weights_sum_to_one(objectives):
    weights = equal_weights(objectives)
    assert math.isclose(sum(weights.values()), 1.0, abs_tol=1e-12)


waits = st.lists(st.floats(0.0, 1e7, allow_nan=False), min_size=1, max_size=16)


@given(waits)
def test_wait_normalization_in_unit_interval(values):
    for method in ("relative-max", "minmax"):
        out = normalize_wait(values, method=method)
        assert np.all(out >= -1e-12)
        assert np.all(out <= 1.0 + 1e-12)


@given(waits)
def test_wait_normalization_reverses_order(values):
    out = normalize_wait(values)
    order_raw = np.argsort(values, kind="stable")
    # Lower wait must map to greater-or-equal normalized value.
    for i in range(len(values)):
        for j in range(len(values)):
            if values[i] < values[j]:
                assert out[i] >= out[j] - 1e-12


@given(waits)
def test_wait_normalization_scale_invariant(values):
    # relative-max normalization is invariant to rescaling all waits.
    out1 = normalize_wait(values)
    out2 = normalize_wait([v * 3.7 for v in values])
    assert np.allclose(out1, out2, atol=1e-9)


@given(st.lists(st.floats(-50.0, 150.0, allow_nan=False), min_size=1, max_size=16))
def test_percentage_normalization_bounds_and_monotone(values):
    out = normalize_percentage(values)
    assert np.all((out >= 0.0) & (out <= 1.0))
    for i in range(len(values)):
        for j in range(len(values)):
            if values[i] <= values[j]:
                assert out[i] <= out[j] + 1e-12


points = st.lists(
    st.tuples(st.floats(0.0, 1.0, allow_nan=False), unit), min_size=1, max_size=12
)


@given(points)
def test_trend_gradient_is_total_function(pts):
    t = fit_trend(pts)
    assert t.gradient in Gradient
    if t.slope is not None:
        assert t.gradient in (Gradient.DECREASING, Gradient.INCREASING, Gradient.ZERO)


@given(points)
@settings(max_examples=50)
def test_trend_invariant_under_duplication(pts):
    t1 = fit_trend(pts)
    t2 = fit_trend(pts + pts)  # duplicates collapse
    assert t1.gradient == t2.gradient
    if t1.slope is not None:
        assert math.isclose(t1.slope, t2.slope, rel_tol=1e-9, abs_tol=1e-12)
