"""Property-based tests of the service layer across all policies.

Random workloads through every registered policy, checking invariants that
must hold regardless of scheduling decisions.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.objectives import compute_objectives
from repro.economy.models import make_model
from repro.policies import POLICIES, make_policy
from repro.service.provider import CommercialComputingService
from repro.workload.job import Job

TOTAL_PROCS = 8

job_strategy = st.builds(
    dict,
    submit=st.floats(0.0, 5000.0),
    runtime=st.floats(1.0, 2000.0),
    est_factor=st.floats(0.3, 5.0),
    procs=st.integers(1, TOTAL_PROCS),
    deadline_factor=st.floats(1.1, 20.0),
    budget_factor=st.floats(0.5, 20.0),
    pr_factor=st.floats(0.0, 4.0),
)

workloads = st.lists(job_strategy, min_size=1, max_size=12)


def build_jobs(raw):
    jobs = []
    for i, spec in enumerate(raw, start=1):
        runtime = spec["runtime"]
        jobs.append(
            Job(
                job_id=i,
                submit_time=spec["submit"],
                runtime=runtime,
                estimate=max(runtime * spec["est_factor"], 1.0),
                procs=spec["procs"],
                deadline=runtime * spec["deadline_factor"],
                budget=runtime * spec["budget_factor"],
                penalty_rate=spec["pr_factor"] * spec["budget_factor"] / spec["deadline_factor"],
            )
        )
    return jobs


def run_policy(policy_name, jobs, model="bid"):
    service = CommercialComputingService(
        make_policy(policy_name), make_model(model), total_procs=TOTAL_PROCS
    )
    return service.run([j.clone() for j in jobs])


@given(workloads, st.sampled_from(sorted(POLICIES)))
@settings(max_examples=60, deadline=None)
def test_every_job_resolves_and_timestamps_are_sane(raw, policy_name):
    jobs = build_jobs(raw)
    result = run_policy(policy_name, jobs)
    assert len(result.outcomes) == len(jobs)
    by_id = {j.job_id: j for j in jobs}
    for o in result.outcomes:
        job = by_id[o.job_id]
        if o.accepted:
            assert o.start_time is not None and o.finish_time is not None
            assert o.start_time >= job.submit_time - 1e-9
            assert o.finish_time > o.start_time
        else:
            assert o.start_time is None


@given(workloads, st.sampled_from(["FCFS-BF", "SJF-BF", "EDF-BF", "FCFS", "Cons-BF", "FirstReward"]))
@settings(max_examples=60, deadline=None)
def test_spaceshared_runtime_is_exact(raw, policy_name):
    jobs = build_jobs(raw)
    result = run_policy(policy_name, jobs)
    by_id = {j.job_id: j for j in jobs}
    for o in result.outcomes:
        if o.accepted:
            assert math.isclose(
                o.finish_time - o.start_time, by_id[o.job_id].runtime,
                rel_tol=1e-9, abs_tol=1e-6,
            )


@given(workloads, st.sampled_from(sorted(POLICIES)))
@settings(max_examples=40, deadline=None)
def test_ledger_matches_outcome_utilities(raw, policy_name):
    jobs = build_jobs(raw)
    result = run_policy(policy_name, jobs)
    outcome_total = sum(o.utility for o in result.outcomes)
    assert math.isclose(
        result.ledger.total_utility, outcome_total, rel_tol=1e-9, abs_tol=1e-6
    )


@given(workloads, st.sampled_from(sorted(POLICIES)))
@settings(max_examples=40, deadline=None)
def test_sla_never_exceeds_reliability(raw, policy_name):
    # n_SLA/m <= n_SLA/n because n <= m (Eqs. 2-3).
    jobs = build_jobs(raw)
    objs = run_policy(policy_name, jobs).objectives()
    assert objs.sla <= objs.reliability + 1e-9
    assert 0.0 <= objs.sla <= 100.0
    assert 0.0 <= objs.reliability <= 100.0


@given(workloads, st.sampled_from(["Libra", "Libra+$", "LibraRiskD"]))
@settings(max_examples=40, deadline=None)
def test_timeshared_accepts_start_immediately(raw, policy_name):
    # The Libra family examines jobs at submission: zero wait by design.
    jobs = build_jobs(raw)
    result = run_policy(policy_name, jobs)
    for o in result.outcomes:
        if o.accepted:
            assert math.isclose(o.start_time, o.submit_time, abs_tol=1e-9)


@given(workloads)
@settings(max_examples=30, deadline=None)
def test_commodity_never_charges_above_budget(raw):
    jobs = build_jobs(raw)
    for policy_name in ("FCFS-BF", "Libra", "Libra+$"):
        result = run_policy(policy_name, jobs, model="commodity")
        by_id = {j.job_id: j for j in jobs}
        for o in result.outcomes:
            if o.accepted:
                assert o.utility <= by_id[o.job_id].budget + 1e-6


@given(workloads)
@settings(max_examples=30, deadline=None)
def test_accurate_estimates_imply_no_violations_for_backfillers(raw):
    # With estimate == runtime, the generous admission control guarantees
    # that every accepted job meets its deadline.
    jobs = build_jobs(raw)
    for job in jobs:
        job.estimate = job.runtime
    result = run_policy("FCFS-BF", jobs)
    assert result.objectives().reliability == 100.0
