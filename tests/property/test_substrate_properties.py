"""Property-based tests for the simulation substrates."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.profile import earliest_start_time, easy_backfill_window
from repro.cluster.timeshared import SHARE_EPS, TimeSharedCluster
from repro.economy.penalty import linear_utility
from repro.sim import Simulator
from repro.workload.job import Job
from repro.workload.swf import job_to_record, record_to_job


@given(st.lists(st.tuples(st.floats(0.0, 1e6, allow_nan=False), st.integers(0, 3)),
                min_size=0, max_size=24))
def test_simulator_executes_in_nondecreasing_time_order(events):
    sim = Simulator()
    fired = []
    for t, prio in events:
        sim.schedule_at(t, lambda t=t, p=prio: fired.append((sim.now, p)))
    sim.run()
    times = [t for t, _ in fired]
    assert times == sorted(times)
    assert len(fired) == len(events)


release_lists = st.lists(
    st.tuples(st.floats(0.0, 1e5, allow_nan=False), st.integers(1, 16)),
    min_size=0, max_size=10,
)


@given(release_lists, st.integers(1, 64))
def test_earliest_start_monotone_in_procs(releases, procs):
    total = sum(n for _, n in releases) + 16
    free = 16
    t_small = earliest_start_time(0.0, free, releases, min(procs, total), total)
    t_big = earliest_start_time(0.0, free, releases, total, total)
    assert t_small <= t_big
    assert t_small >= 0.0


@given(release_lists, st.integers(1, 16))
def test_backfill_window_shadow_not_before_now(releases, anchor):
    total = sum(n for _, n in releases) + 16
    now = 50.0
    shadow, spare = easy_backfill_window(now, 16, releases, anchor, total)
    assert shadow >= now
    assert 0 <= spare <= total


@given(
    st.floats(0.1, 1e5),          # runtime
    st.floats(1.0, 1e5),          # deadline
    st.floats(0.0, 1e4),          # budget
    st.floats(0.0, 10.0),         # penalty rate
    st.floats(0.0, 2e5),          # lateness offset
)
def test_penalty_never_exceeds_budget_and_linear(runtime, deadline, budget, pr, offset):
    job = Job(job_id=1, submit_time=0.0, runtime=runtime, estimate=runtime,
              procs=1, deadline=deadline, budget=budget, penalty_rate=pr)
    on_time = linear_utility(job, deadline * 0.5)
    assert on_time == budget  # utility capped at the bid
    late = linear_utility(job, deadline + offset)
    assert late <= budget + 1e-9
    # Linearity: doubling the delay doubles the loss.
    u1 = linear_utility(job, deadline + offset)
    u2 = linear_utility(job, deadline + 2 * offset)
    loss1, loss2 = budget - u1, budget - u2
    assert math.isclose(loss2, 2 * loss1, rel_tol=1e-9, abs_tol=1e-6)


@given(
    st.lists(
        st.tuples(
            st.floats(10.0, 500.0),   # runtime
            st.floats(1.1, 8.0),      # deadline factor
        ),
        min_size=1,
        max_size=6,
    )
)
@settings(max_examples=60, deadline=None)
def test_timeshared_rates_never_oversubscribe_a_node(job_params):
    sim = Simulator()
    cluster = TimeSharedCluster(sim, total_procs=1)
    admitted = 0
    for i, (runtime, factor) in enumerate(job_params, start=1):
        deadline = runtime * factor
        share = runtime / deadline
        if cluster.node_share_load(0) + share <= 1.0 + SHARE_EPS:
            job = Job(job_id=i, submit_time=0.0, runtime=runtime,
                      estimate=runtime, procs=1, deadline=deadline)
            cluster.admit(job, share, [0], lambda j, t: None)
            admitted += 1
    # Invariant: the sum of instantaneous rates on the node never exceeds 1.
    total_rate = sum(s.rate for s in cluster.active_jobs())
    assert total_rate <= 1.0 + 1e-6
    # Invariant: with accurate estimates every admitted job meets its deadline.
    done = {}
    for s in cluster.active_jobs():
        s._on_finish = lambda j, t: done.__setitem__(j.job_id, t)
    sim.run()
    assert len(done) == admitted
    for s_id, finish in done.items():
        job = next(j for j, (r, f) in enumerate(job_params, start=1) if j == s_id)
    # deadlines checked per job:
    for i, (runtime, factor) in enumerate(job_params, start=1):
        if i in done:
            assert done[i] <= runtime * factor + 1e-6


@given(
    st.integers(1, 10_000),
    st.floats(0.0, 1e6, allow_nan=False),
    st.floats(1.0, 1e5),
    st.floats(1.0, 2e5),
    st.integers(1, 128),
)
def test_swf_record_roundtrip(job_id, submit, runtime, estimate, procs):
    job = Job(job_id=job_id, submit_time=submit, runtime=runtime,
              estimate=estimate, procs=procs)
    back = record_to_job(job_to_record(job))
    assert back is not None
    assert back.job_id == job.job_id
    assert math.isclose(back.runtime, job.runtime, rel_tol=1e-12)
    assert math.isclose(back.estimate, job.trace_estimate, rel_tol=1e-12)
    assert back.procs == job.procs
