"""Property-based tests for the analysis layers (ranking, frontier,
a priori grading)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.apriori import Severity, grade
from repro.core.frontier import dominates, pareto_frontier
from repro.core.ranking import rank_policies
from repro.core.riskplot import RiskPlot

unit = st.floats(0.0, 1.0, allow_nan=False)
vol = st.floats(0.0, 0.5, allow_nan=False)
point_lists = st.lists(st.tuples(vol, unit), min_size=1, max_size=6)
plots = st.dictionaries(
    st.sampled_from(["p1", "p2", "p3", "p4", "p5"]),
    point_lists,
    min_size=1,
    max_size=5,
)


def build_plot(data) -> RiskPlot:
    plot = RiskPlot()
    for policy, points in data.items():
        for i, (v, p) in enumerate(points):
            plot.add_point(policy, f"s{i}", v, p)
    return plot


@given(plots)
@settings(max_examples=120)
def test_ranking_is_total_and_deterministic(data):
    plot = build_plot(data)
    for by in ("performance", "volatility"):
        ranked = rank_policies(plot, by=by)
        assert [r.policy for r in ranked] != []
        assert sorted(r.policy for r in ranked) == sorted(data.keys())
        assert [r.rank for r in ranked] == list(range(1, len(data) + 1))
        again = rank_policies(build_plot(data), by=by)
        assert [r.policy for r in ranked] == [r.policy for r in again]


@given(plots)
@settings(max_examples=120)
def test_performance_ranking_respects_primary_key(data):
    ranked = rank_policies(build_plot(data), by="performance")
    maxima = [r.max_performance for r in ranked]
    assert maxima == sorted(maxima, reverse=True) or all(
        a >= b - 1e-12 for a, b in zip(maxima, maxima[1:])
    )


@given(plots)
@settings(max_examples=120)
def test_volatility_ranking_respects_primary_key(data):
    ranked = rank_policies(build_plot(data), by="volatility")
    minima = [r.min_volatility for r in ranked]
    assert all(a <= b + 1e-12 for a, b in zip(minima, minima[1:]))


points_maps = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d"]),
    st.tuples(unit, vol),
    min_size=1,
    max_size=4,
)


@given(points_maps)
@settings(max_examples=150)
def test_frontier_nonempty_and_mutually_nondominated(points):
    frontier = pareto_frontier(points)
    assert frontier
    for x in frontier:
        for y in frontier:
            if x != y:
                assert not dominates(points[x], points[y]) or points[x] == points[y]


@given(points_maps)
@settings(max_examples=150)
def test_frontier_members_undominated_by_anyone(points):
    frontier = set(pareto_frontier(points))
    for name in frontier:
        assert not any(
            dominates(points[other], points[name])
            for other in points
            if other != name
        )


@given(unit, vol)
@settings(max_examples=200)
def test_grade_monotone_in_both_axes(performance, volatility):
    base = grade(performance, volatility)
    better_perf = grade(min(performance + 0.2, 1.0), volatility)
    assert better_perf <= base
    calmer = grade(performance, max(volatility - 0.1, 0.0))
    assert calmer <= base
    assert base in Severity
