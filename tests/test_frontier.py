"""Unit tests for efficient-frontier analysis."""

import math

import pytest

from repro.core.frontier import (
    dominated_policies,
    dominates,
    frontier_report,
    pareto_frontier,
    plot_points,
    risk_adjusted_score,
)
from repro.core.riskplot import RiskPlot


def test_dominates_strict():
    assert dominates((0.9, 0.1), (0.8, 0.2))
    assert dominates((0.9, 0.1), (0.9, 0.2))   # same perf, less risk
    assert dominates((0.9, 0.1), (0.8, 0.1))   # more perf, same risk
    assert not dominates((0.9, 0.1), (0.9, 0.1))  # identical: no strict edge
    assert not dominates((0.9, 0.3), (0.8, 0.1))  # trade-off: incomparable


def test_frontier_keeps_tradeoff_points():
    points = {
        "high_risk_high_perf": (0.9, 0.4),
        "low_risk_low_perf": (0.6, 0.05),
        "dominated": (0.55, 0.4),
    }
    frontier = pareto_frontier(points)
    assert frontier == ["high_risk_high_perf", "low_risk_low_perf"]
    assert dominated_policies(points) == ["dominated"]


def test_frontier_single_policy():
    assert pareto_frontier({"only": (0.5, 0.2)}) == ["only"]


def test_frontier_identical_points_all_kept():
    points = {"a": (0.7, 0.2), "b": (0.7, 0.2)}
    assert set(pareto_frontier(points)) == {"a", "b"}


def test_risk_adjusted_score_basic():
    assert risk_adjusted_score(0.8, 0.2) == pytest.approx(4.0)
    assert risk_adjusted_score(0.8, 0.2, baseline=0.4) == pytest.approx(2.0)


def test_risk_adjusted_riskless_limits():
    assert risk_adjusted_score(0.9, 0.0) == float("inf")
    assert risk_adjusted_score(-0.1, 0.0) == float("-inf")
    assert risk_adjusted_score(0.0, 0.0) == 0.0


def test_frontier_report_ordering():
    points = {
        "steady": (0.8, 0.1),
        "wild": (0.9, 0.45),
        "bad": (0.3, 0.4),
    }
    report = frontier_report(points)
    assert [e.policy for e in report] == ["steady", "wild", "bad"]
    by_name = {e.policy: e for e in report}
    assert by_name["steady"].on_frontier
    assert by_name["wild"].on_frontier
    assert not by_name["bad"].on_frontier


def test_plot_points_max_and_mean():
    plot = RiskPlot()
    plot.add_point("p", "s1", 0.1, 0.9)
    plot.add_point("p", "s2", 0.3, 0.5)
    maxed = plot_points(plot, "max")
    assert maxed["p"] == (0.9, 0.1)
    mean = plot_points(plot, "mean")
    assert mean["p"] == (pytest.approx(0.7), pytest.approx(0.2))
    with pytest.raises(ValueError):
        plot_points(plot, "median")


def test_frontier_from_sample_figure():
    from repro.experiments.sampledata import sample_risk_plot

    points = plot_points(sample_risk_plot(), "max")
    frontier = pareto_frontier(points)
    # A is ideal: it dominates everything else, so the frontier is {A}...
    # except B and E which trade performance against volatility? A has
    # (1.0, 0.0): nothing survives against it.
    assert frontier == ["A"]
