"""Tests for the fault-domain subsystem (topology, correlated failures,
cascades, elastic capacity) and its integration with the grid pipeline,
the chaos harness, the farm, and the market.

The acceptance bar of the correlated-fault work: a fault-domain grid is
bit-identical across serial, parallel, resumed, and farmed execution, and
a whole-domain outage mid-grid (the chaos harness's correlated batch
kill) degrades with correct gap accounting instead of corrupting state.
"""

import json

import pytest

from repro.economy.models import make_model
from repro.experiments.pipeline import (
    ExecutionPolicy,
    assemble_grid,
    execute_plan,
    grid_plan,
)
from repro.experiments.runner import RunCache, run_grid, run_single
from repro.experiments.runstore import SCHEMA_VERSION, RunKey, RunStore
from repro.experiments.scenarios import ExperimentConfig, scenario_by_name
from repro.experiments.store import grid_to_dict
from repro.faults.config import FaultConfig
from repro.faults.topology import FaultTopology
from repro.policies import make_policy
from repro.service.provider import CommercialComputingService
from repro.workload.job import Job

FAST = dict(backoff_base=0.001, backoff_cap=0.002, poll_interval=0.02)


def _job(job_id=1, submit=0.0, runtime=100.0, procs=1, deadline=1e6,
         budget=1e9, penalty_rate=1.0):
    return Job(
        job_id=job_id,
        submit_time=submit,
        runtime=runtime,
        procs=procs,
        estimate=runtime,
        deadline=deadline,
        budget=budget,
        penalty_rate=penalty_rate,
    )


def _service(policy="FCFS-BF", model="bid", procs=8, faults=None, seed=0):
    return CommercialComputingService(
        make_policy(policy),
        make_model(model),
        total_procs=procs,
        fault_config=faults,
        fault_seed=seed,
    )


#: effectively failure-free per-node process: isolates the domain layer.
QUIET_MTBF = 1e12


# -- topology ------------------------------------------------------------------


def test_topology_membership_and_partial_last_rack():
    topo = FaultTopology(total_nodes=10, rack_size=4)
    assert topo.n_racks == 3
    assert topo.rack_nodes(0) == (0, 1, 2, 3)
    assert topo.rack_nodes(2) == (8, 9)  # partial last rack
    assert topo.rack_of(5) == 1
    assert topo.domain_nodes("node7") == (7,)
    assert topo.domain_nodes("rack1") == (4, 5, 6, 7)
    with pytest.raises(ValueError):
        topo.domain_nodes("rack3")
    with pytest.raises(ValueError):
        topo.domain_nodes("site0")  # no site layer configured


def test_topology_site_layer_and_peers():
    topo = FaultTopology(total_nodes=16, rack_size=4, site_racks=2)
    assert topo.n_sites == 2
    assert topo.site_of(5) == 0 and topo.site_of(9) == 1
    assert topo.site_nodes(1) == tuple(range(8, 16))
    # Node peers are rack-mates only.
    assert set(topo.node_peers(5)) == {4, 6, 7}
    # Rack peers stay within the site when a site layer exists.
    assert topo.rack_peers(0) == ("rack1",)
    assert topo.rack_peers(3) == ("rack2",)
    # Without a site layer every other rack is a peer.
    flat = FaultTopology(total_nodes=12, rack_size=4)
    assert set(flat.rack_peers(1)) == {"rack0", "rack2"}


def test_topology_serialisation_and_validation():
    topo = FaultTopology(total_nodes=16, rack_size=4, site_racks=2)
    assert FaultTopology.from_dict(topo.to_dict()) == topo
    with pytest.raises(ValueError):
        FaultTopology.from_dict({**topo.to_dict(), "bogus": 1})
    with pytest.raises(ValueError):
        FaultTopology(total_nodes=8, rack_size=0, site_racks=2)  # site w/o rack
    # No rack layer: nodes have no peers and rack names are invalid.
    flat = FaultTopology(total_nodes=8)
    assert flat.node_peers(0) == ()
    with pytest.raises(ValueError):
        flat.domain_nodes("rack0")


# -- config cross-field validation ---------------------------------------------


def test_domain_config_cross_field_validation():
    with pytest.raises(ValueError, match="domain_size"):
        FaultConfig(site_racks=2)
    with pytest.raises(ValueError, match="domain_size"):
        FaultConfig(domain_mtbf=1000.0)
    with pytest.raises(ValueError, match="domain_size"):
        FaultConfig(cascade_prob=0.5)
    with pytest.raises(ValueError):
        FaultConfig(domain_size=4, cascade_prob=1.5)  # prob out of range
    with pytest.raises(ValueError, match="site_racks"):
        FaultConfig(domain_size=4, site_mtbf=1000.0)
    with pytest.raises(ValueError):
        FaultConfig(elastic_model="quantum")
    with pytest.raises(ValueError, match="schedule"):
        FaultConfig(elastic_model="scripted")  # scripted needs a schedule
    with pytest.raises(ValueError):
        FaultConfig(elastic_schedule=((10.0, 2),))  # schedule without model
    with pytest.raises(ValueError, match="interval"):
        FaultConfig(elastic_model="stochastic", elastic_max_extra=2)


def test_domain_config_roundtrips_through_dict():
    config = FaultConfig(
        enabled=True, domain_size=4, site_racks=2,
        domain_mtbf=50_000.0, cascade_prob=0.25,
        elastic_model="scripted", elastic_schedule=((100.0, 2), (500.0, -1)),
    )
    assert config.has_correlated_faults and config.has_elastic
    assert FaultConfig.from_dict(
        json.loads(json.dumps(config.to_dict()))
    ) == config


# -- atomic domain outages -----------------------------------------------------


def test_scripted_rack_outage_downs_all_members_atomically():
    config = FaultConfig(
        enabled=True, mtbf=QUIET_MTBF, domain_size=4,
        domain_schedule=((50.0, "rack0", 200.0),),
    )
    service = _service(procs=8, faults=config)
    service.run([_job(runtime=500.0, procs=8)])
    stats = service.injector.stats
    assert stats.domain_outages == 1
    assert stats.failures == 4  # every member of rack0, nobody else
    assert stats.repairs == 4
    assert sorted(stats.per_node_failures) == [0, 1, 2, 3]
    # The 8-proc job lost nodes and recovered through the normal path.
    record = service.record_of(service.collect().records[0].job)
    assert record.interruptions == 1 and not record.failed


def test_scripted_site_outage_covers_every_rack_in_the_site():
    config = FaultConfig(
        enabled=True, mtbf=QUIET_MTBF, domain_size=2, site_racks=2,
        domain_schedule=((30.0, "site0", 100.0),),
    )
    service = _service(procs=8, faults=config)
    service.run([_job(runtime=400.0, procs=8)])
    stats = service.injector.stats
    assert stats.domain_outages == 1
    assert sorted(stats.per_node_failures) == [0, 1, 2, 3]  # racks 0+1


# -- cascades ------------------------------------------------------------------


def test_cascade_prob_one_drags_down_every_rack_mate():
    config = FaultConfig(
        enabled=True, model="scripted", schedule=((50.0, 0, 200.0),),
        domain_size=4, cascade_prob=1.0, cascade_delay=5.0,
    )
    service = _service(procs=8, faults=config)
    service.run([_job(runtime=500.0, procs=8)])
    stats = service.injector.stats
    # Node 0's failure propagates to rack-mates 1, 2, 3 — and stops there
    # (cascade_depth=1), so rack1 never hears about it.
    assert stats.cascade_propagations == 3
    assert stats.failures == 4
    assert sorted(stats.per_node_failures) == [0, 1, 2, 3]


def test_cascade_prob_zero_keeps_failures_independent():
    config = FaultConfig(
        enabled=True, model="scripted", schedule=((50.0, 0, 200.0),),
        domain_size=4, cascade_prob=0.0,
    )
    service = _service(procs=8, faults=config)
    service.run([_job(runtime=500.0, procs=8)])
    stats = service.injector.stats
    assert stats.cascade_propagations == 0
    assert stats.failures == 1


def test_correlated_stochastic_runs_are_deterministic_and_prob_sensitive():
    base = ExperimentConfig(n_jobs=40, total_procs=16).with_values(
        fault_mtbf=60_000.0, fault_mttr=600.0,
        fault_domain_size=4, fault_domain_mtbf=20_000.0,
    )
    calm = base.with_values(fault_cascade_prob=0.0)
    wild = base.with_values(fault_cascade_prob=1.0)
    assert run_single(calm, "FCFS-BF", "bid") == run_single(calm, "FCFS-BF", "bid")
    assert run_single(wild, "FCFS-BF", "bid") == run_single(wild, "FCFS-BF", "bid")
    assert run_single(calm, "FCFS-BF", "bid") != run_single(wild, "FCFS-BF", "bid")


# -- elastic capacity ----------------------------------------------------------


def test_scripted_elastic_grows_then_shrinks_spaceshared():
    config = FaultConfig(
        enabled=True, mtbf=QUIET_MTBF, elastic_model="scripted",
        elastic_schedule=((100.0, 2), (5000.0, -1)),
    )
    service = _service(procs=4, faults=config)
    service.run([_job(runtime=8000.0)])
    stats = service.injector.stats
    assert stats.nodes_commissioned == 2
    assert stats.nodes_decommissioned == 1
    assert service.cluster.total_procs == 5  # 4 base + 2 − 1
    # LIFO: node 5 (the newest) went; node 4 is still in service.
    assert service.injector.commissioned_nodes() == (4,)


def test_scripted_elastic_below_base_size_raises():
    config = FaultConfig(
        enabled=True, mtbf=QUIET_MTBF, elastic_model="scripted",
        elastic_schedule=((10.0, -1),),
    )
    service = _service(procs=4, faults=config)
    with pytest.raises(ValueError, match="below the base machine size"):
        service.run([_job(runtime=100.0)])


def test_elastic_commission_expands_timeshared_admission():
    # 2-node time-shared cluster; a 3-proc job is only feasible after the
    # third node is commissioned at t=50.
    config = FaultConfig(
        enabled=True, mtbf=QUIET_MTBF, elastic_model="scripted",
        elastic_schedule=((50.0, 1),),
    )
    service = _service(policy="Libra", model="commodity", procs=2, faults=config)
    keeper = _job(job_id=1, runtime=400.0, deadline=1e6)
    wide = _job(job_id=2, submit=100.0, runtime=50.0, procs=3, deadline=1e6)
    service.run([keeper, wide])
    assert service.record_of(wide).deadline_met
    assert service.cluster.total_procs == 3


def test_stochastic_elastic_is_deterministic():
    config = ExperimentConfig(n_jobs=40, total_procs=16).with_values(
        fault_mtbf=80_000.0, fault_elastic_model="stochastic",
        fault_elastic_interval=5_000.0, fault_elastic_max_extra=4,
    )
    assert run_single(config, "FCFS-BF", "bid") == run_single(
        config, "FCFS-BF", "bid"
    )


# -- schema & sweepability -----------------------------------------------------


def test_schema_version_bumped_for_fault_domains():
    assert SCHEMA_VERSION == 3


def test_every_domain_knob_is_a_virtual_sweep_field_and_moves_the_digest():
    base = ExperimentConfig(n_jobs=20, total_procs=16).with_values(
        fault_mtbf=50_000.0
    )
    reference = RunKey(base, "FCFS-BF", "bid").digest
    for knob, value in (
        ("fault_domain_size", 4),
        ("fault_cascade_prob", 0.5),
        ("fault_elastic_interval", 1000.0),
        ("fault_site_racks", 2),
    ):
        # fault_* knobs compose like any scenario knob …
        changed = base.with_values(
            **{knob: value, "fault_domain_size": 4, "fault_site_racks": 0}
            if knob != "fault_domain_size" and knob != "fault_site_racks"
            else {"fault_domain_size": 4, knob: value}
        )
        assert changed.faults.enabled
        # … and every one of them changes the content address.
        assert RunKey(changed, "FCFS-BF", "bid").digest != reference


def test_correlated_sweep_produces_risk_table():
    from repro.experiments.faultsweep import run_correlated_sweep

    base = ExperimentConfig(n_jobs=20, total_procs=16)
    result = run_correlated_sweep(
        ["FCFS-BF"], "bid", base,
        cascade_probs=(0.0, 1.0), domain_size=4,
        domain_mtbf=20_000.0, domain_mttr=600.0, mtbf=100_000.0,
    )
    assert len(result.rows) == 2
    assert {row.cascade_prob for row in result.rows} == {0.0, 1.0}
    text = result.table()
    assert "cascade" in text and "volatility" in text


# -- grid parity: the acceptance bar -------------------------------------------

POLICIES = ["FCFS-BF", "Libra"]
SCENARIO = "job mix"
CORRELATED = ExperimentConfig(n_jobs=20, total_procs=16).with_values(
    fault_mtbf=60_000.0, fault_mttr=600.0,
    fault_domain_size=4, fault_domain_mtbf=25_000.0,
    fault_cascade_prob=0.5,
)


def _correlated_reference() -> dict:
    return grid_to_dict(
        run_grid(POLICIES, "bid", CORRELATED, "A",
                 [scenario_by_name(SCENARIO)], RunCache())
    )


@pytest.mark.slow
def test_correlated_grid_parity_serial_parallel_resumed_farm(tmp_path):
    """Serial, 2-worker pool, resumed, and 2-worker farm execution of a
    correlated-fault grid are all bit-identical."""
    from repro.farm import Coordinator, Farm, WorkerAgent, plan_from_args

    reference = _correlated_reference()
    scenarios = [scenario_by_name(SCENARIO)]
    plan = grid_plan(POLICIES, "bid", CORRELATED, "A", scenarios)

    # Process pool.
    pool_store = RunCache()
    execution = execute_plan(
        plan, pool_store, n_workers=2, execution=ExecutionPolicy(**FAST)
    )
    assert execution.complete
    assert grid_to_dict(
        assemble_grid(pool_store, POLICIES, "bid", CORRELATED, "A", scenarios)
    ) == reference

    # Interrupted + resumed against a disk store.
    disk = RunStore(tmp_path / "store")
    unique = []
    seen = set()
    for item in plan:
        digest = RunKey(*item).digest
        if digest not in seen:
            seen.add(digest)
            unique.append(item)
    execute_plan(unique[: len(unique) // 2], disk)  # partial first pass
    resumed = RunStore(tmp_path / "store")
    grid = run_grid(POLICIES, "bid", CORRELATED, "A", scenarios, resumed)
    assert resumed.misses == len(unique) - len(unique) // 2
    assert grid_to_dict(grid) == reference

    # Two farm workers splitting the same job.
    farm = Farm(tmp_path / "farm")
    job_id = farm.create_job(
        plan_from_args(POLICIES, "bid", CORRELATED, "A", scenarios=(SCENARIO,))
    )
    first = WorkerAgent(farm, worker_id="w1").run(max_units=5)
    second = WorkerAgent(farm, worker_id="w2").run(drain=True)
    assert first + second == len(unique)
    Coordinator(farm, poll_interval=0.01).drive(job_id, timeout=120.0)
    assert json.loads(farm.result_path(job_id).read_text()) == reference


# -- chaos: correlated batch loss ----------------------------------------------


@pytest.mark.slow
def test_batch_chaos_kills_whole_batch_and_grid_recovers(tmp_path, monkeypatch):
    """A worker dies holding a multi-run batch (the shape of a domain
    outage); the supervisor splits the batch uncharged and the grid
    completes bit-identically."""
    reference = _correlated_reference()
    scenarios = [scenario_by_name(SCENARIO)]
    chaos_dir = tmp_path / "chaos"
    chaos_dir.mkdir()
    monkeypatch.setenv("REPRO_CHAOS_DIR", str(chaos_dir))
    monkeypatch.setenv("REPRO_CHAOS_BATCH", "1")
    plan = grid_plan(POLICIES, "bid", CORRELATED, "A", scenarios)
    store = RunStore(tmp_path / "store")
    execution = execute_plan(
        plan, store, n_workers=2,
        execution=ExecutionPolicy(max_retries=0, on_error="degrade", **FAST),
    )
    assert len(list(chaos_dir.glob("*.batchkilled"))) == 1
    # The batch members were innocent: nobody was charged, nothing failed.
    assert execution.failed == ()
    assert execution.complete
    monkeypatch.delenv("REPRO_CHAOS_DIR")
    monkeypatch.delenv("REPRO_CHAOS_BATCH")
    grid = assemble_grid(
        RunStore(tmp_path / "store"), POLICIES, "bid", CORRELATED, "A", scenarios
    )
    assert grid_to_dict(grid) == reference


@pytest.mark.slow
def test_domain_outage_mid_grid_degrades_with_gap_accounting(tmp_path, monkeypatch):
    """A worker is killed holding a charged singleton run: degrade-mode
    assembly journals the gap instead of aborting, and a clean rerun
    against the same store reproduces the reference bit-identically.

    ``batch_size=1`` pins the kill to a singleton dispatch — a kill
    inside a multi-run batch would be split and retried uncharged (the
    previous test), which is recovery, not a gap."""
    reference = _correlated_reference()
    scenarios = [scenario_by_name(SCENARIO)]
    chaos_dir = tmp_path / "chaos"
    chaos_dir.mkdir()
    monkeypatch.setenv("REPRO_CHAOS_DIR", str(chaos_dir))
    monkeypatch.setenv("REPRO_CHAOS_KILL", "1")
    plan = grid_plan(POLICIES, "bid", CORRELATED, "A", scenarios)
    store = RunStore(tmp_path / "store")
    execution = execute_plan(
        plan, store, n_workers=2,
        execution=ExecutionPolicy(max_retries=0, on_error="degrade",
                                  batch_size=1, **FAST),
    )
    # The singleton crash was charged; with zero retries it is a gap (a
    # broken pool can take in-flight siblings down with it, so >= 1).
    assert len(execution.failed) >= 1
    grid = assemble_grid(
        store, POLICIES, "bid", CORRELATED, "A", scenarios, on_missing="degrade"
    )
    assert grid.degraded and len(grid.gaps) >= 1
    assert all(gap.get("kind") for gap in grid.gaps)  # journaled reasons
    monkeypatch.delenv("REPRO_CHAOS_DIR")
    monkeypatch.delenv("REPRO_CHAOS_KILL")
    # Clean rerun on the same store fills the gap bit-identically.
    grid = run_grid(POLICIES, "bid", CORRELATED, "A", scenarios,
                    RunStore(tmp_path / "store"))
    assert grid_to_dict(grid) == reference


# -- market: correlated provider outages ---------------------------------------


def test_outage_group_requires_an_outage_process():
    from repro.market import SyntheticSpec

    with pytest.raises(ValueError, match="mtbf"):
        SyntheticSpec("p", outage_group="grid")
    spec = SyntheticSpec("p", mtbf=1000.0, outage_group="grid")
    assert SyntheticSpec.from_dict(spec.to_dict()) == spec


def test_grouped_providers_share_outage_instants():
    from repro.market import Marketplace, SyntheticSpec, market_job_stream

    def final_failures(specs):
        market = Marketplace(specs, n_users=50, seed=3)
        market.run(market_job_stream(800, seed=3))
        return {name: market.providers[name].failures for name in market.names}

    grouped = final_failures([
        SyntheticSpec("a", capacity=96.0, mtbf=5_000.0, mttr=500.0,
                      outage_group="grid"),
        SyntheticSpec("b", capacity=96.0, mtbf=5_000.0, mttr=500.0,
                      outage_group="grid"),
        SyntheticSpec("steady", capacity=96.0, admission="deadline"),
    ])
    # Both group members folded exactly the same outages.
    assert grouped["a"] == grouped["b"] > 0

    private = final_failures([
        SyntheticSpec("a", capacity=96.0, mtbf=5_000.0, mttr=500.0),
        SyntheticSpec("b", capacity=96.0, mtbf=5_000.0, mttr=500.0),
        SyntheticSpec("steady", capacity=96.0, admission="deadline"),
    ])
    # Private substreams: same marginal law, different instants.
    assert private["a"] > 0 and private["b"] > 0


def test_grouped_provider_mtbf_mismatch_is_rejected():
    from repro.market import Marketplace, SyntheticSpec

    with pytest.raises(ValueError, match="disagrees"):
        Marketplace([
            SyntheticSpec("a", mtbf=5_000.0, mttr=500.0, outage_group="grid"),
            SyntheticSpec("b", mtbf=9_000.0, mttr=500.0, outage_group="grid"),
        ], n_users=10)


def test_correlated_market_sweep_compares_independent_vs_grouped():
    from repro.experiments.marketsweep import (
        correlated_market_config,
        correlated_market_scenario,
        run_market_sweep,
    )

    base = correlated_market_config(n_users=100, n_jobs=400)
    result = run_market_sweep(base, scenario=correlated_market_scenario())
    assert result.complete
    levels = {row.level for row in result.rows}
    assert levels == {None, "grid"}
    assert "outage_group" in result.table()
