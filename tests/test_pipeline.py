"""Tests for the unified plan → execute → assemble pipeline, including the
interrupted-grid resume semantics the run store guarantees."""

import pytest

from repro import perf
from repro.experiments.parallel import run_grid_parallel
from repro.experiments.pipeline import (
    assemble_grid,
    execute_plan,
    grid_plan,
)
from repro.experiments.runner import RunCache, run_grid
from repro.experiments.runstore import RunKey, RunStore, StoreError
from repro.experiments.scenarios import ExperimentConfig, scenario_by_name
from repro.experiments.store import grid_to_dict

SMALL = ExperimentConfig(n_jobs=20, total_procs=16)
SCENARIOS = [scenario_by_name("job mix"), scenario_by_name("workload")]
POLICIES = ["FCFS-BF", "Libra"]


def unique_items(plan):
    seen, out = set(), []
    for config, policy, model in plan:
        digest = RunKey(config, policy, model).digest
        if digest not in seen:
            seen.add(digest)
            out.append((config, policy, model))
    return out


# -- planning ------------------------------------------------------------------


def test_grid_plan_enumerates_every_access():
    plan = grid_plan(POLICIES, "bid", SMALL, "A", SCENARIOS)
    assert len(plan) == 2 * 6 * 2  # scenarios × values × policies
    # The default config appears in both scenarios → duplicates by content.
    assert len(unique_items(plan)) < len(plan)


def test_grid_plan_applies_estimate_set():
    plan = grid_plan(POLICIES, "bid", SMALL, "B", SCENARIOS)
    assert all(config.inaccuracy_pct == 100.0 for config, _, _ in plan)


# -- execution accounting ------------------------------------------------------


def test_execute_plan_accounting_matches_serial_semantics():
    plan = grid_plan(POLICIES, "bid", SMALL, "A", SCENARIOS)
    store = RunCache()
    execution = execute_plan(plan, store)
    assert execution.accesses == len(plan)
    assert execution.misses == len(unique_items(plan))
    assert execution.hits == execution.accesses - execution.misses
    assert execution.executed == execution.misses
    assert execution.complete
    assert (store.hits, store.misses) == (execution.hits, execution.misses)
    # Warm rerun: pure hits.
    warm = execute_plan(plan, store)
    assert (warm.hits, warm.misses, warm.executed) == (len(plan), 0, 0)


def test_execute_plan_rejects_bad_shard():
    with pytest.raises(ValueError):
        execute_plan([], RunCache(), shard=(3, 3))
    with pytest.raises(ValueError):
        execute_plan([], RunCache(), shard=(-1, 2))


def test_sharded_execution_covers_the_grid_exactly_once(tmp_path):
    plan = grid_plan(POLICIES, "bid", SMALL, "A", SCENARIOS)
    n_shards = 3
    executed = 0
    for index in range(n_shards):
        store = RunStore(tmp_path)  # shards share the cache dir
        execution = execute_plan(plan, store, shard=(index, n_shards))
        executed += execution.executed
        if index < n_shards - 1:
            assert not execution.complete
    assert executed == len(unique_items(plan))
    # Every shard done → assembly from a fresh store matches the reference.
    grid = assemble_grid(RunStore(tmp_path), POLICIES, "bid", SMALL, "A", SCENARIOS)
    reference = run_grid(POLICIES, "bid", SMALL, "A", SCENARIOS)
    assert grid_to_dict(grid) == grid_to_dict(reference)


def test_assemble_refuses_incomplete_store():
    store = RunCache()
    plan = grid_plan(POLICIES, "bid", SMALL, "A", SCENARIOS)
    execute_plan(plan, store, shard=(0, 2))  # half the misses only
    with pytest.raises(StoreError, match="incomplete"):
        assemble_grid(store, POLICIES, "bid", SMALL, "A", SCENARIOS)


# -- resume semantics ----------------------------------------------------------


def _simulations_during(fn):
    """Run ``fn`` under the perf registry; returns (result, simulations)."""
    with perf.capture() as registry:
        result = fn()
        count = int(registry.counters.get("runner.simulations", 0))
    return result, count


def test_interrupted_grid_resumes_only_missing_keys_serial(tmp_path):
    reference = run_grid(POLICIES, "bid", SMALL, "A", SCENARIOS)
    reference_doc = grid_to_dict(reference)
    plan = grid_plan(POLICIES, "bid", SMALL, "A", SCENARIOS)
    unique = unique_items(plan)

    # Simulate a mid-grid interrupt: only part of the plan ever executed.
    partial = RunStore(tmp_path)
    n_done = len(unique) // 2
    execute_plan(unique[:n_done], partial)
    assert partial.stats()["disk_runs"] == n_done

    # The rerun (a fresh process would build a fresh store) must simulate
    # exactly the missing keys and reproduce the reference bit for bit.
    resumed_store = RunStore(tmp_path)
    grid, simulated = _simulations_during(
        lambda: run_grid(POLICIES, "bid", SMALL, "A", SCENARIOS, resumed_store)
    )
    assert simulated == len(unique) - n_done
    assert grid_to_dict(grid) == reference_doc


@pytest.mark.slow
def test_interrupted_grid_resumes_only_missing_keys_parallel(tmp_path):
    reference_doc = grid_to_dict(run_grid(POLICIES, "bid", SMALL, "A", SCENARIOS))
    plan = grid_plan(POLICIES, "bid", SMALL, "A", SCENARIOS)
    unique = unique_items(plan)

    partial = RunStore(tmp_path)
    n_done = len(unique) // 2
    execute_plan(unique[:n_done], partial)

    resumed_store = RunStore(tmp_path)
    grid = run_grid_parallel(
        POLICIES, "bid", SMALL, "A", SCENARIOS, n_workers=2, cache=resumed_store
    )
    # Only the missing keys were dispatched…
    assert resumed_store.misses == len(unique) - n_done
    # …and the reassembled analysis is identical to the cold serial run.
    assert grid_to_dict(grid) == reference_doc


def test_resume_tolerates_a_corrupted_checkpoint(tmp_path):
    store = RunStore(tmp_path)
    run_grid(POLICIES, "bid", SMALL, "A", SCENARIOS, store)
    reference_doc = grid_to_dict(
        assemble_grid(store, POLICIES, "bid", SMALL, "A", SCENARIOS)
    )
    # Truncate one checkpoint file (as a crash mid-write never would, but a
    # full disk or manual edit could).
    victim = sorted((tmp_path / "runs").glob("??/*.json"))[0]
    victim.write_text(victim.read_text()[:25])
    resumed = RunStore(tmp_path)
    grid, simulated = _simulations_during(
        lambda: run_grid(POLICIES, "bid", SMALL, "A", SCENARIOS, resumed)
    )
    assert simulated == 1  # exactly the corrupted key re-simulated
    assert grid_to_dict(grid) == reference_doc


# -- entry points share the pipeline ------------------------------------------


def test_replication_uses_shared_store(tmp_path):
    from repro.experiments.replication import run_replicated

    store = RunStore(tmp_path)
    first = run_replicated(
        POLICIES, "bid", SMALL, "A", SCENARIOS, seeds=(0, 1), cache=store
    )
    warm = RunStore(tmp_path)
    second, simulated = _simulations_during(
        lambda: run_replicated(
            POLICIES, "bid", SMALL, "A", SCENARIOS, seeds=(0, 1), cache=warm
        )
    )
    assert simulated == 0
    for a, b in zip(first.grids, second.grids):
        assert grid_to_dict(a) == grid_to_dict(b)


def test_tornado_uses_shared_store(tmp_path):
    from repro.experiments.sensitivity import tornado_analysis

    store = RunStore(tmp_path)
    first = tornado_analysis("FCFS-BF", "bid", SMALL, SCENARIOS, store)
    warm = RunStore(tmp_path)
    second, simulated = _simulations_during(
        lambda: tornado_analysis("FCFS-BF", "bid", SMALL, SCENARIOS, warm)
    )
    assert simulated == 0
    assert first == second
