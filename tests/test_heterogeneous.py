"""Unit tests for heterogeneous space-shared clusters and bounded penalties."""

import pytest

from repro.cluster.node import REFERENCE_RATING, Node
from repro.cluster.spaceshared import SpaceSharedCluster
from repro.economy.models import BoundedBidModel, make_model
from repro.economy.penalty import bounded_utility, linear_utility
from repro.sim import Simulator
from repro.workload.job import Job


def make_job(job_id=1, runtime=100.0, procs=1, submit=0.0, deadline=1e6,
             budget=100.0, pr=1.0):
    return Job(job_id=job_id, submit_time=submit, runtime=runtime,
               estimate=runtime, procs=procs, deadline=deadline,
               budget=budget, penalty_rate=pr)


# -- node speed factors -------------------------------------------------------

def test_node_speed_factor():
    assert Node(0).speed_factor == 1.0
    assert Node(1, spec_rating=2 * REFERENCE_RATING).speed_factor == 2.0
    with pytest.raises(ValueError):
        Node(2, spec_rating=0.0)


# -- heterogeneous execution -----------------------------------------------------

def hetero_cluster(sim, ratings):
    return SpaceSharedCluster(sim, node_ratings=[r * REFERENCE_RATING for r in ratings])


def test_fast_node_halves_runtime():
    sim = Simulator()
    cluster = hetero_cluster(sim, [2.0])
    done = []
    cluster.start(make_job(runtime=100.0), lambda j, t: done.append(t))
    sim.run()
    assert done == [pytest.approx(50.0)]


def test_gang_runs_at_slowest_allocated_node():
    sim = Simulator()
    cluster = hetero_cluster(sim, [2.0, 1.0])
    done = []
    cluster.start(make_job(runtime=100.0, procs=2), lambda j, t: done.append(t))
    sim.run()
    assert done == [pytest.approx(100.0)]


def test_fastest_free_nodes_allocated_first():
    sim = Simulator()
    cluster = hetero_cluster(sim, [1.0, 4.0, 2.0])
    record = cluster.start(make_job(runtime=100.0, procs=1), lambda j, t: None)
    assert record.speed == pytest.approx(4.0)
    record2 = cluster.start(make_job(2, runtime=100.0, procs=1), lambda j, t: None)
    assert record2.speed == pytest.approx(2.0)


def test_nodes_returned_to_free_pool():
    sim = Simulator()
    cluster = hetero_cluster(sim, [1.0, 4.0])
    done = []
    cluster.start(make_job(runtime=100.0, procs=1), lambda j, t: done.append(t))
    sim.run()
    # The fast node is free again: a new job gets speed 4 once more.
    record = cluster.start(make_job(2, runtime=100.0, procs=1), lambda j, t: None)
    assert record.speed == pytest.approx(4.0)


def test_estimated_finish_accounts_for_speed():
    sim = Simulator()
    cluster = hetero_cluster(sim, [2.0])
    job = make_job(runtime=100.0)
    job.estimate = 200.0
    record = cluster.start(job, lambda j, t: None)
    assert record.estimated_finish == pytest.approx(100.0)  # 200 / 2.0
    assert cluster.releases() == [(pytest.approx(100.0), 1)]


def test_homogeneous_path_unchanged():
    sim = Simulator()
    cluster = SpaceSharedCluster(sim, total_procs=4)
    assert not cluster.heterogeneous
    record = cluster.start(make_job(procs=2), lambda j, t: None)
    assert record.speed == 1.0
    assert record.nodes == ()


def test_empty_ratings_rejected():
    with pytest.raises(ValueError):
        SpaceSharedCluster(Simulator(), node_ratings=[])


def test_hetero_end_to_end_with_policy():
    from repro.policies.fcfs_bf import FCFSBackfill
    from repro.service.provider import CommercialComputingService

    class HeteroFCFS(FCFSBackfill):
        def make_cluster(self, sim, total_procs):
            ratings = [REFERENCE_RATING * (2.0 if i % 2 else 1.0) for i in range(total_procs)]
            return SpaceSharedCluster(sim, node_ratings=ratings)

    jobs = [make_job(i, submit=float(i), runtime=100.0, procs=1) for i in range(1, 5)]
    service = CommercialComputingService(HeteroFCFS(), make_model("bid"), total_procs=4)
    result = service.run(jobs)
    finishes = sorted(o.finish_time - o.start_time for o in result.outcomes)
    # Two jobs on fast nodes (50s) and two on reference nodes (100s).
    assert finishes == [pytest.approx(50.0)] * 2 + [pytest.approx(100.0)] * 2


# -- bounded penalty --------------------------------------------------------------

def test_bounded_utility_floors_at_budget_multiple():
    job = make_job(budget=100.0, pr=10.0, deadline=100.0)
    very_late = job.submit_time + job.deadline + 1e6
    assert linear_utility(job, very_late) < -100.0
    assert bounded_utility(job, very_late, floor_factor=1.0) == -100.0
    assert bounded_utility(job, very_late, floor_factor=0.0) == 0.0


def test_bounded_matches_linear_when_on_time():
    job = make_job(budget=100.0, pr=1.0, deadline=100.0)
    assert bounded_utility(job, 50.0) == linear_utility(job, 50.0) == 100.0


def test_bounded_model_registered():
    model = make_model("bid-bounded")
    assert model.name == "bid-bounded"
    job = make_job(budget=100.0, pr=10.0, deadline=100.0)
    assert model.utility(job, 1e7, 0.0) == -100.0


def test_bounded_model_validation():
    with pytest.raises(ValueError):
        BoundedBidModel(floor_factor=-1.0)
    with pytest.raises(ValueError):
        bounded_utility(make_job(), 50.0, floor_factor=-0.5)
