"""Unit tests for trace-model calibration."""

import pytest

from repro.workload.calibration import calibration_report, fit_trace_model
from repro.workload.job import Job
from repro.workload.synthetic import SDSC_SP2, TraceModel, generate_trace


def test_roundtrip_recovers_moments():
    # Generate from a known model, fit, and check the recovered parameters.
    truth = TraceModel(n_jobs=4000, mean_interarrival=500.0, mean_runtime=2000.0,
                       max_procs=64, proc_exponent_max=5.0)
    jobs = generate_trace(truth, rng=0)
    fitted = fit_trace_model(jobs)
    assert fitted.n_jobs == 4000
    assert fitted.mean_interarrival == pytest.approx(500.0, rel=0.1)
    assert fitted.mean_runtime == pytest.approx(2000.0, rel=0.1)
    assert fitted.max_procs <= 64
    assert fitted.proc_exponent_max == pytest.approx(5.0, rel=0.25)
    assert fitted.overestimate_fraction == pytest.approx(0.92, abs=0.03)


def test_fitted_twin_matches_observed_statistics():
    jobs = generate_trace(SDSC_SP2.scaled(3000), rng=1)
    report = calibration_report(jobs, seed=2)
    for key, err in report["relative_errors"].items():
        assert err < 0.20, f"{key} off by {err:.0%}"


def test_small_traces_rejected():
    jobs = generate_trace(SDSC_SP2.scaled(10), rng=0)
    with pytest.raises(ValueError):
        fit_trace_model(jobs[:2])


def test_simultaneous_submits_rejected_when_no_gaps():
    jobs = [
        Job(job_id=i, submit_time=0.0, runtime=100.0, estimate=100.0, procs=1)
        for i in range(1, 5)
    ]
    with pytest.raises(ValueError):
        fit_trace_model(jobs)


def test_explicit_max_procs_override():
    jobs = generate_trace(SDSC_SP2.scaled(200), rng=3)
    fitted = fit_trace_model(jobs, max_procs=256)
    assert fitted.max_procs == 256


def test_fitted_model_is_generatable():
    jobs = generate_trace(SDSC_SP2.scaled(300), rng=4)
    model = fit_trace_model(jobs)
    twin = generate_trace(model.scaled(100), rng=5)
    assert len(twin) == 100
    assert all(j.procs <= model.max_procs for j in twin)
