"""Unit tests for workload cleaning and shaping filters."""

import pytest

from repro.workload.cleaning import (
    cap_estimates,
    filter_by_procs,
    filter_span,
    offered_load,
    remove_flurries,
    scale_load,
    take_last,
)
from repro.workload.job import Job


def make_job(job_id, submit=0.0, runtime=100.0, procs=1, user=None, estimate=None):
    job = Job(job_id=job_id, submit_time=submit, runtime=runtime,
              estimate=estimate or runtime, procs=procs)
    if user is not None:
        job.extra["user_id"] = user
    return job


def test_take_last_selects_and_rebases():
    jobs = [make_job(i, submit=float(i * 10)) for i in range(1, 6)]
    kept = take_last(jobs, 2)
    assert [j.job_id for j in kept] == [4, 5]
    assert kept[0].submit_time == 0.0
    assert kept[1].submit_time == 10.0


def test_take_last_zero_and_negative():
    jobs = [make_job(1)]
    assert take_last(jobs, 0) == []
    with pytest.raises(ValueError):
        take_last(jobs, -1)


def test_filter_by_procs_drops_wide_jobs():
    jobs = [make_job(1, procs=4), make_job(2, procs=64)]
    assert [j.job_id for j in filter_by_procs(jobs, 32)] == [1]
    with pytest.raises(ValueError):
        filter_by_procs(jobs, 0)


def test_filter_span_half_open():
    jobs = [make_job(i, submit=float(i * 100)) for i in range(5)]
    kept = filter_span(jobs, 100.0, 300.0)
    assert [j.job_id for j in kept] == [1, 2]
    with pytest.raises(ValueError):
        filter_span(jobs, 10.0, 5.0)


def test_flurry_removal_caps_user_bursts():
    burst = [make_job(i, submit=float(i), user=7) for i in range(1, 31)]
    other = [make_job(100, submit=15.0, user=8)]
    kept = remove_flurries(burst + other, max_burst=10, window=3600.0)
    user7 = [j for j in kept if j.extra.get("user_id") == 7]
    assert len(user7) == 10
    assert any(j.job_id == 100 for j in kept)  # other users untouched


def test_flurry_window_slides():
    # 5 jobs per hour: never more than max_burst within the window.
    jobs = [make_job(i, submit=i * 800.0, user=1) for i in range(1, 20)]
    kept = remove_flurries(jobs, max_burst=5, window=3600.0)
    assert len(kept) == len(jobs)


def test_flurry_keeps_anonymous_jobs():
    jobs = [make_job(i, submit=0.0) for i in range(1, 50)]
    assert len(remove_flurries(jobs, max_burst=2)) == len(jobs)


def test_flurry_validation():
    with pytest.raises(ValueError):
        remove_flurries([], max_burst=0)
    with pytest.raises(ValueError):
        remove_flurries([], window=0.0)


def test_cap_estimates():
    jobs = [make_job(1, runtime=100.0, estimate=5000.0)]
    cap_estimates(jobs, 3600.0)
    assert jobs[0].estimate == 3600.0
    assert jobs[0].trace_estimate == 3600.0
    with pytest.raises(ValueError):
        cap_estimates(jobs, 0.0)


def test_scale_load_compresses_arrivals():
    jobs = [make_job(1, submit=0.0), make_job(2, submit=100.0)]
    scale_load(jobs, 0.25)
    assert jobs[1].submit_time == 25.0
    with pytest.raises(ValueError):
        scale_load(jobs, 0.0)


def test_offered_load_demand_ratio():
    # Two 100s 4-proc jobs back to back on an 8-proc machine over 200s:
    # work = 800, capacity = 1600 -> ratio 0.5.
    jobs = [make_job(1, submit=0.0, runtime=100.0, procs=4),
            make_job(2, submit=100.0, runtime=100.0, procs=4)]
    profile = offered_load(jobs, total_procs=8)
    assert profile.demand_ratio == pytest.approx(0.5)
    assert profile.peak_concurrency == 4
    assert profile.span_seconds == pytest.approx(200.0)


def test_offered_load_overlap_peak():
    jobs = [make_job(1, submit=0.0, runtime=100.0, procs=4),
            make_job(2, submit=50.0, runtime=100.0, procs=4)]
    profile = offered_load(jobs, total_procs=4)
    assert profile.peak_concurrency == 8
    assert profile.demand_ratio > 1.0  # overload


def test_offered_load_empty_and_validation():
    assert offered_load([], 8).demand_ratio == 0.0
    with pytest.raises(ValueError):
        offered_load([], 0)


def test_swf_parser_populates_user_ids():
    from repro.workload.swf import parse_swf_text

    text = "1 0 0 100 2 -1 -1 2 200 -1 1 42 9 -1 3 -1 -1 -1\n"
    (job,) = parse_swf_text(text)
    assert job.extra["user_id"] == 42
    assert job.extra["group_id"] == 9
    assert job.extra["queue"] == 3
