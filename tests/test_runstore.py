"""Unit tests for the content-addressed run store (RunKey + RunStore)."""

import json

import pytest

from repro.core.objectives import ObjectiveSet
from repro.experiments.runstore import (
    RUN_VERSION,
    RunKey,
    RunStore,
    StoreError,
    config_from_dict,
    config_to_dict,
    load_run_document,
    objectives_from_dict,
    objectives_to_dict,
)
from repro.experiments.scenarios import ExperimentConfig

CONFIG = ExperimentConfig(n_jobs=50, total_procs=32)
OBJS = ObjectiveSet(wait=123.456789, sla=87.5, reliability=92.25, profitability=-3.125)


# -- RunKey --------------------------------------------------------------------


def test_run_key_is_stable_across_processes():
    # The digest must depend only on content, never on object identity or
    # dict ordering — recomputing from an equal config yields the same hash.
    a = RunKey(CONFIG, "FCFS-BF", "bid")
    b = RunKey(ExperimentConfig(n_jobs=50, total_procs=32), "FCFS-BF", "bid")
    assert a.digest == b.digest
    assert len(a.digest) == 64  # sha256 hex


def test_run_key_distinguishes_every_input():
    base = RunKey(CONFIG, "FCFS-BF", "bid").digest
    assert RunKey(CONFIG.with_values(seed=1), "FCFS-BF", "bid").digest != base
    assert RunKey(CONFIG, "EDF-BF", "bid").digest != base
    assert RunKey(CONFIG, "FCFS-BF", "commodity").digest != base


def test_config_dict_roundtrip():
    config = CONFIG.with_values(arrival_delay_factor=0.1, inaccuracy_pct=40.0)
    assert config_from_dict(config_to_dict(config)) == config
    with pytest.raises(StoreError):
        config_from_dict({"not_a_field": 1})


def test_objectives_roundtrip_is_bit_exact():
    back = objectives_from_dict(json.loads(json.dumps(objectives_to_dict(OBJS))))
    assert back == OBJS  # float repr round-trips losslessly through JSON


# -- RunStore, memory layer ----------------------------------------------------


def test_memory_store_get_put():
    store = RunStore()
    assert store.get(CONFIG, "FCFS-BF", "bid") is None
    store.put(CONFIG, "FCFS-BF", "bid", OBJS)
    assert store.get(CONFIG, "FCFS-BF", "bid") == OBJS
    assert len(store) == 1
    assert store.run_path(RunKey(CONFIG, "FCFS-BF", "bid")) is None


# -- RunStore, disk layer ------------------------------------------------------


def test_disk_store_roundtrip_across_instances(tmp_path):
    RunStore(tmp_path).put(CONFIG, "FCFS-BF", "bid", OBJS)
    fresh = RunStore(tmp_path)
    assert len(fresh) == 0  # memory layer cold
    assert fresh.get(CONFIG, "FCFS-BF", "bid") == OBJS  # served from disk
    assert len(fresh) == 1  # promoted into memory


def test_disk_layout_and_index(tmp_path):
    store = RunStore(tmp_path)
    store.put(CONFIG, "FCFS-BF", "bid", OBJS)
    store.put(CONFIG, "EDF-BF", "bid", OBJS)
    digests = store.disk_digests()
    assert digests == {
        RunKey(CONFIG, "FCFS-BF", "bid").digest,
        RunKey(CONFIG, "EDF-BF", "bid").digest,
    }
    for digest in digests:
        path = tmp_path / "runs" / digest[:2] / f"{digest}.json"
        assert path.is_file()
        doc = json.loads(path.read_text())
        assert doc["key"] == digest
    entries = list(store.index_entries())
    assert {e["policy"] for e in entries} == {"FCFS-BF", "EDF-BF"}
    assert all(e["key"] in digests for e in entries)


def test_corrupt_document_is_a_miss_not_a_crash(tmp_path):
    store = RunStore(tmp_path)
    store.put(CONFIG, "FCFS-BF", "bid", OBJS)
    path = store.run_path(RunKey(CONFIG, "FCFS-BF", "bid"))
    path.write_text(path.read_text()[: len(path.read_text()) // 2])  # truncate
    fresh = RunStore(tmp_path)
    assert fresh.get(CONFIG, "FCFS-BF", "bid") is None
    # And the store recovers by overwriting the bad entry.
    fresh.put(CONFIG, "FCFS-BF", "bid", OBJS)
    assert RunStore(tmp_path).get(CONFIG, "FCFS-BF", "bid") == OBJS


def test_foreign_and_newer_documents_are_skipped(tmp_path):
    store = RunStore(tmp_path)
    store.put(CONFIG, "FCFS-BF", "bid", OBJS)
    path = store.run_path(RunKey(CONFIG, "FCFS-BF", "bid"))
    doc = json.loads(path.read_text())
    doc["version"] = RUN_VERSION + 1
    path.write_text(json.dumps(doc))
    assert RunStore(tmp_path).get(CONFIG, "FCFS-BF", "bid") is None
    doc["version"] = RUN_VERSION
    doc["format"] = "something-else"
    path.write_text(json.dumps(doc))
    assert RunStore(tmp_path).get(CONFIG, "FCFS-BF", "bid") is None


def test_load_run_document_reports_newer_version_clearly():
    key = RunKey(CONFIG, "FCFS-BF", "bid")
    doc = key.document(OBJS)
    doc["version"] = RUN_VERSION + 7
    with pytest.raises(StoreError, match="newer"):
        load_run_document(doc)
    with pytest.raises(StoreError, match="format"):
        load_run_document({"format": "nope"})


def test_atomic_writes_leave_no_temp_files(tmp_path):
    store = RunStore(tmp_path)
    for policy in ("FCFS-BF", "EDF-BF", "Libra"):
        store.put(CONFIG, policy, "bid", OBJS)
    leftovers = [p for p in tmp_path.rglob("*.tmp*")]
    assert leftovers == []


def test_stats_summary(tmp_path):
    store = RunStore(tmp_path)
    store.put(CONFIG, "FCFS-BF", "bid", OBJS)
    stats = store.stats()
    assert stats["memory_runs"] == 1
    assert stats["disk_runs"] == 1
    assert stats["cache_dir"] == str(tmp_path)
    assert RunStore().stats()["cache_dir"] is None


# -- quarantine of corrupt documents -------------------------------------------


def test_corrupt_document_is_quarantined_for_diagnosis(tmp_path):
    from repro.perf import capture as perf_capture

    store = RunStore(tmp_path)
    store.put(CONFIG, "FCFS-BF", "bid", OBJS)
    path = store.run_path(RunKey(CONFIG, "FCFS-BF", "bid"))
    bad_bytes = path.read_text()[:25]
    path.write_text(bad_bytes)
    fresh = RunStore(tmp_path)
    with perf_capture() as perf:
        assert fresh.get(CONFIG, "FCFS-BF", "bid") is None
        counters = dict(perf.counters)
    assert counters.get("runstore.quarantined") == 1
    # The evidence moved aside rather than being deleted or left in place.
    assert not path.exists()
    quarantined = tmp_path / "quarantine" / path.name
    assert quarantined.read_text() == bad_bytes


def test_quarantine_never_overwrites_earlier_evidence(tmp_path):
    store = RunStore(tmp_path)
    path = store.run_path(RunKey(CONFIG, "FCFS-BF", "bid"))
    for generation in ("first crash", "second crash"):
        store.put(CONFIG, "FCFS-BF", "bid", OBJS)
        path.write_text(generation)
        assert RunStore(tmp_path).get(CONFIG, "FCFS-BF", "bid") is None
    qdir = tmp_path / "quarantine"
    contents = {p.read_text() for p in qdir.iterdir()}
    assert contents == {"first crash", "second crash"}


# -- failure journal -----------------------------------------------------------


def make_failure(digest: str, kind: str = "timeout") -> "FailureRecord":
    from repro.experiments.errors import FailureRecord

    return FailureRecord(
        digest=digest, policy="FCFS-BF", model="bid",
        kind=kind, message="event budget exhausted", attempts=3,
    )


def test_failure_journal_roundtrips_across_instances(tmp_path):
    digest = RunKey(CONFIG, "FCFS-BF", "bid").digest
    store = RunStore(tmp_path)
    store.record_failure(make_failure(digest))
    assert (tmp_path / "failures.jsonl").exists()
    fresh = RunStore(tmp_path)
    record = fresh.failures()[digest]
    assert record.kind == "timeout"
    assert record.attempts == 3
    assert fresh.failure_for(digest) == record
    assert fresh.stats()["failures"] == 1


def test_successful_put_resolves_a_journaled_failure(tmp_path):
    digest = RunKey(CONFIG, "FCFS-BF", "bid").digest
    store = RunStore(tmp_path)
    store.record_failure(make_failure(digest))
    store.put(CONFIG, "FCFS-BF", "bid", OBJS)
    # The journal stays append-only, but the run document wins …
    assert digest in (tmp_path / "failures.jsonl").read_text()
    assert store.failures() == {}
    # … including from a cold store that only sees the disk state.
    assert RunStore(tmp_path).failures() == {}


def test_latest_journal_record_wins_and_bad_lines_are_skipped(tmp_path):
    digest = RunKey(CONFIG, "FCFS-BF", "bid").digest
    store = RunStore(tmp_path)
    store.record_failure(make_failure(digest, kind="crash"))
    store.record_failure(make_failure(digest, kind="timeout"))
    with open(tmp_path / "failures.jsonl", "a") as fh:
        fh.write("not json at all\n")
    assert RunStore(tmp_path).failures()[digest].kind == "timeout"


def test_memory_only_store_journals_in_memory():
    store = RunStore()
    store.record_failure(make_failure("f" * 64))
    assert store.failures()["f" * 64].kind == "timeout"


# -- schema migration (schema 1 → 2: the nested faults block) ------------------


def test_schema_bump_invalidates_pre_fault_cache(tmp_path, monkeypatch):
    """A grid cached before ``FaultConfig`` existed must be a clean miss.

    Simulates a schema-1 store by monkeypatching ``SCHEMA_VERSION`` back to
    1 while writing (the digest covers the schema, so the old entry lands
    under a different key), then verifies current code neither hits it nor
    crashes on it — it simply re-simulates and writes a fresh schema-2
    document alongside.
    """
    import repro.experiments.runstore as rs

    monkeypatch.setattr(rs, "SCHEMA_VERSION", 1)
    old_store = RunStore(tmp_path)
    old_store.put(CONFIG, "FCFS-BF", "bid", OBJS)
    old_digest = RunKey(CONFIG, "FCFS-BF", "bid").digest
    monkeypatch.undo()

    store = RunStore(tmp_path)
    new_digest = RunKey(CONFIG, "FCFS-BF", "bid").digest
    assert new_digest != old_digest  # schema version is part of the identity
    assert store.get(CONFIG, "FCFS-BF", "bid") is None  # clean miss
    store.put(CONFIG, "FCFS-BF", "bid", OBJS)
    assert store.get(CONFIG, "FCFS-BF", "bid") == OBJS
    assert {old_digest, new_digest} <= store.disk_digests()


@pytest.mark.filterwarnings("ignore:FaultConfig")
def test_fault_config_roundtrips_and_addresses_runs():
    faulty = CONFIG.with_values(
        fault_mtbf=7200.0, fault_recovery="checkpoint",
        fault_schedule=((10.0, 3, 60.0),), fault_model="scripted",
    )
    assert faulty.faults.enabled
    back = config_from_dict(json.loads(json.dumps(config_to_dict(faulty))))
    assert back == faulty
    # Every fault knob must change the content address.
    base = RunKey(faulty, "FCFS-BF", "bid").digest
    assert RunKey(CONFIG, "FCFS-BF", "bid").digest != base
    assert (
        RunKey(faulty.with_values(fault_recovery="resubmit"), "FCFS-BF", "bid").digest
        != base
    )
    assert RunKey(faulty.with_values(fault_mttr=1.0), "FCFS-BF", "bid").digest != base


def test_malformed_faults_block_is_a_store_error():
    doc = config_to_dict(CONFIG)
    doc["faults"] = {"no_such_fault_field": True}
    with pytest.raises(StoreError, match="faults"):
        config_from_dict(doc)


# -- merge / sync (the farm's store convergence path) --------------------------


def seeded_store(path, policies=("FCFS-BF",)) -> RunStore:
    store = RunStore(path)
    for policy in policies:
        store.put(CONFIG, policy, "bid", OBJS)
    return store


def test_merge_copies_new_runs_and_dedupes_identical_bytes(tmp_path):
    dest = seeded_store(tmp_path / "dest", policies=("FCFS-BF",))
    src = seeded_store(tmp_path / "src", policies=("FCFS-BF", "Libra"))
    report = dest.merge_from(src)
    assert (report.runs_copied, report.runs_deduped) == (1, 1)
    assert report.conflicts == report.corrupt == 0
    assert dest.disk_digests() == src.disk_digests()
    # The merged run is readable through the normal lookup path …
    assert RunStore(tmp_path / "dest").get(CONFIG, "Libra", "bid") == OBJS
    # … and a repeated merge is a pure dedupe.
    again = dest.merge_from(src)
    assert (again.runs_copied, again.runs_deduped) == (0, 2)


def test_merge_conflict_quarantines_both_sides_and_continues(tmp_path):
    dest = seeded_store(tmp_path / "dest", policies=("FCFS-BF", "Libra"))
    src = seeded_store(tmp_path / "src", policies=("FCFS-BF", "EDF-BF"))
    digest = RunKey(CONFIG, "FCFS-BF", "bid").digest
    # Same digest, different bytes: a forged objective value on the source.
    path = src.run_path(RunKey(CONFIG, "FCFS-BF", "bid"))
    doc = json.loads(path.read_text())
    doc["objectives"]["avg_wait_time"] = 999.0
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")

    report = dest.merge_from(src)
    assert report.conflicts == 1
    assert report.runs_copied == 1  # EDF-BF still merged — one bad cell
    # Both sides of the conflict are preserved as evidence …
    quarantined = list((tmp_path / "dest" / "quarantine").glob(f"{digest}*"))
    assert len(quarantined) == 2
    # … the cell is a re-runnable miss, and the source store is untouched.
    assert digest not in dest.disk_digests()
    assert dest.get(CONFIG, "FCFS-BF", "bid") is None
    assert digest in src.disk_digests()


def test_merge_quarantines_corrupt_source_documents(tmp_path):
    dest = RunStore(tmp_path / "dest")
    src = seeded_store(tmp_path / "src", policies=("FCFS-BF", "Libra"))
    path = src.run_path(RunKey(CONFIG, "FCFS-BF", "bid"))
    path.write_text('{"format": "repro-run", "version": 1, "key"')  # truncated

    report = dest.merge_from(src)
    assert (report.runs_copied, report.corrupt) == (1, 1)
    assert list((tmp_path / "dest" / "quarantine").glob("*.json*"))
    assert len(dest.disk_digests()) == 1


def test_merge_appends_failure_journal_latest_record_wins(tmp_path):
    digest = "a" * 64
    dest = RunStore(tmp_path / "dest")
    dest.record_failure(make_failure(digest, kind="crash"))
    src = RunStore(tmp_path / "src")
    src.record_failure(make_failure(digest, kind="timeout"))

    report = dest.merge_from(src)
    assert report.failure_records == 1
    # The source's record was appended after ours, so it wins …
    assert RunStore(tmp_path / "dest").failures()[digest].kind == "timeout"
    # … and both lines are still in the append-only journal.
    journal = (tmp_path / "dest" / "failures.jsonl").read_text().splitlines()
    assert len(journal) == 2


def test_merge_requires_disk_backing():
    with pytest.raises(StoreError, match="disk-backed"):
        RunStore().merge_from(RunStore())


def test_merge_report_sums_and_summarises():
    from repro.experiments.runstore import MergeReport

    total = MergeReport(runs_copied=2, conflicts=1) + MergeReport(
        runs_copied=3, corrupt=1, failure_records=4
    )
    assert (total.runs_copied, total.conflicts, total.corrupt) == (5, 1, 1)
    assert "5 runs" in total.summary() and "1 conflicts" in total.summary()
    assert total.to_dict()["failure_records"] == 4


# -- index compaction ----------------------------------------------------------


def test_compact_dedupes_index_and_drops_dead_entries(tmp_path):
    store = RunStore(tmp_path)
    store.put(CONFIG, "FCFS-BF", "bid", OBJS)
    store.put(CONFIG, "FCFS-BF", "bid", OBJS)  # duplicate append
    store.put(CONFIG, "Libra", "bid", OBJS)
    (tmp_path / "index.jsonl").open("a").write("not json\n")
    # An entry whose run document is gone must be dropped.
    gone = RunKey(CONFIG, "EDF-BF", "bid")
    store.put(CONFIG, "EDF-BF", "bid", OBJS)
    store.run_path(gone).unlink()

    before, after = store.compact()
    assert before == 5 and after == 2
    entries = list(store.index_entries())
    assert [e["policy"] for e in entries] == ["FCFS-BF", "Libra"]
    # Compaction is idempotent and the index still parses line by line.
    assert store.compact() == (2, 2)


def test_compact_is_noop_for_memory_store():
    assert RunStore().compact() == (0, 0)
