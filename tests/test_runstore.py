"""Unit tests for the content-addressed run store (RunKey + RunStore)."""

import json

import pytest

from repro.core.objectives import ObjectiveSet
from repro.experiments.runstore import (
    RUN_VERSION,
    RunKey,
    RunStore,
    StoreError,
    config_from_dict,
    config_to_dict,
    load_run_document,
    objectives_from_dict,
    objectives_to_dict,
)
from repro.experiments.scenarios import ExperimentConfig

CONFIG = ExperimentConfig(n_jobs=50, total_procs=32)
OBJS = ObjectiveSet(wait=123.456789, sla=87.5, reliability=92.25, profitability=-3.125)


# -- RunKey --------------------------------------------------------------------


def test_run_key_is_stable_across_processes():
    # The digest must depend only on content, never on object identity or
    # dict ordering — recomputing from an equal config yields the same hash.
    a = RunKey(CONFIG, "FCFS-BF", "bid")
    b = RunKey(ExperimentConfig(n_jobs=50, total_procs=32), "FCFS-BF", "bid")
    assert a.digest == b.digest
    assert len(a.digest) == 64  # sha256 hex


def test_run_key_distinguishes_every_input():
    base = RunKey(CONFIG, "FCFS-BF", "bid").digest
    assert RunKey(CONFIG.with_values(seed=1), "FCFS-BF", "bid").digest != base
    assert RunKey(CONFIG, "EDF-BF", "bid").digest != base
    assert RunKey(CONFIG, "FCFS-BF", "commodity").digest != base


def test_config_dict_roundtrip():
    config = CONFIG.with_values(arrival_delay_factor=0.1, inaccuracy_pct=40.0)
    assert config_from_dict(config_to_dict(config)) == config
    with pytest.raises(StoreError):
        config_from_dict({"not_a_field": 1})


def test_objectives_roundtrip_is_bit_exact():
    back = objectives_from_dict(json.loads(json.dumps(objectives_to_dict(OBJS))))
    assert back == OBJS  # float repr round-trips losslessly through JSON


# -- RunStore, memory layer ----------------------------------------------------


def test_memory_store_get_put():
    store = RunStore()
    assert store.get(CONFIG, "FCFS-BF", "bid") is None
    store.put(CONFIG, "FCFS-BF", "bid", OBJS)
    assert store.get(CONFIG, "FCFS-BF", "bid") == OBJS
    assert len(store) == 1
    assert store.run_path(RunKey(CONFIG, "FCFS-BF", "bid")) is None


# -- RunStore, disk layer ------------------------------------------------------


def test_disk_store_roundtrip_across_instances(tmp_path):
    RunStore(tmp_path).put(CONFIG, "FCFS-BF", "bid", OBJS)
    fresh = RunStore(tmp_path)
    assert len(fresh) == 0  # memory layer cold
    assert fresh.get(CONFIG, "FCFS-BF", "bid") == OBJS  # served from disk
    assert len(fresh) == 1  # promoted into memory


def test_disk_layout_and_index(tmp_path):
    store = RunStore(tmp_path)
    store.put(CONFIG, "FCFS-BF", "bid", OBJS)
    store.put(CONFIG, "EDF-BF", "bid", OBJS)
    digests = store.disk_digests()
    assert digests == {
        RunKey(CONFIG, "FCFS-BF", "bid").digest,
        RunKey(CONFIG, "EDF-BF", "bid").digest,
    }
    for digest in digests:
        path = tmp_path / "runs" / digest[:2] / f"{digest}.json"
        assert path.is_file()
        doc = json.loads(path.read_text())
        assert doc["key"] == digest
    entries = list(store.index_entries())
    assert {e["policy"] for e in entries} == {"FCFS-BF", "EDF-BF"}
    assert all(e["key"] in digests for e in entries)


def test_corrupt_document_is_a_miss_not_a_crash(tmp_path):
    store = RunStore(tmp_path)
    store.put(CONFIG, "FCFS-BF", "bid", OBJS)
    path = store.run_path(RunKey(CONFIG, "FCFS-BF", "bid"))
    path.write_text(path.read_text()[: len(path.read_text()) // 2])  # truncate
    fresh = RunStore(tmp_path)
    assert fresh.get(CONFIG, "FCFS-BF", "bid") is None
    # And the store recovers by overwriting the bad entry.
    fresh.put(CONFIG, "FCFS-BF", "bid", OBJS)
    assert RunStore(tmp_path).get(CONFIG, "FCFS-BF", "bid") == OBJS


def test_foreign_and_newer_documents_are_skipped(tmp_path):
    store = RunStore(tmp_path)
    store.put(CONFIG, "FCFS-BF", "bid", OBJS)
    path = store.run_path(RunKey(CONFIG, "FCFS-BF", "bid"))
    doc = json.loads(path.read_text())
    doc["version"] = RUN_VERSION + 1
    path.write_text(json.dumps(doc))
    assert RunStore(tmp_path).get(CONFIG, "FCFS-BF", "bid") is None
    doc["version"] = RUN_VERSION
    doc["format"] = "something-else"
    path.write_text(json.dumps(doc))
    assert RunStore(tmp_path).get(CONFIG, "FCFS-BF", "bid") is None


def test_load_run_document_reports_newer_version_clearly():
    key = RunKey(CONFIG, "FCFS-BF", "bid")
    doc = key.document(OBJS)
    doc["version"] = RUN_VERSION + 7
    with pytest.raises(StoreError, match="newer"):
        load_run_document(doc)
    with pytest.raises(StoreError, match="format"):
        load_run_document({"format": "nope"})


def test_atomic_writes_leave_no_temp_files(tmp_path):
    store = RunStore(tmp_path)
    for policy in ("FCFS-BF", "EDF-BF", "Libra"):
        store.put(CONFIG, policy, "bid", OBJS)
    leftovers = [p for p in tmp_path.rglob("*.tmp*")]
    assert leftovers == []


def test_stats_summary(tmp_path):
    store = RunStore(tmp_path)
    store.put(CONFIG, "FCFS-BF", "bid", OBJS)
    stats = store.stats()
    assert stats["memory_runs"] == 1
    assert stats["disk_runs"] == 1
    assert stats["cache_dir"] == str(tmp_path)
    assert RunStore().stats()["cache_dir"] is None


# -- schema migration (schema 1 → 2: the nested faults block) ------------------


def test_schema_bump_invalidates_pre_fault_cache(tmp_path, monkeypatch):
    """A grid cached before ``FaultConfig`` existed must be a clean miss.

    Simulates a schema-1 store by monkeypatching ``SCHEMA_VERSION`` back to
    1 while writing (the digest covers the schema, so the old entry lands
    under a different key), then verifies current code neither hits it nor
    crashes on it — it simply re-simulates and writes a fresh schema-2
    document alongside.
    """
    import repro.experiments.runstore as rs

    monkeypatch.setattr(rs, "SCHEMA_VERSION", 1)
    old_store = RunStore(tmp_path)
    old_store.put(CONFIG, "FCFS-BF", "bid", OBJS)
    old_digest = RunKey(CONFIG, "FCFS-BF", "bid").digest
    monkeypatch.undo()

    store = RunStore(tmp_path)
    new_digest = RunKey(CONFIG, "FCFS-BF", "bid").digest
    assert new_digest != old_digest  # schema version is part of the identity
    assert store.get(CONFIG, "FCFS-BF", "bid") is None  # clean miss
    store.put(CONFIG, "FCFS-BF", "bid", OBJS)
    assert store.get(CONFIG, "FCFS-BF", "bid") == OBJS
    assert {old_digest, new_digest} <= store.disk_digests()


def test_fault_config_roundtrips_and_addresses_runs():
    faulty = CONFIG.with_values(
        fault_mtbf=7200.0, fault_recovery="checkpoint",
        fault_schedule=((10.0, 3, 60.0),), fault_model="scripted",
    )
    assert faulty.faults.enabled
    back = config_from_dict(json.loads(json.dumps(config_to_dict(faulty))))
    assert back == faulty
    # Every fault knob must change the content address.
    base = RunKey(faulty, "FCFS-BF", "bid").digest
    assert RunKey(CONFIG, "FCFS-BF", "bid").digest != base
    assert (
        RunKey(faulty.with_values(fault_recovery="resubmit"), "FCFS-BF", "bid").digest
        != base
    )
    assert RunKey(faulty.with_values(fault_mttr=1.0), "FCFS-BF", "bid").digest != base


def test_malformed_faults_block_is_a_store_error():
    doc = config_to_dict(CONFIG)
    doc["faults"] = {"no_such_fault_field": True}
    with pytest.raises(StoreError, match="faults"):
        config_from_dict(doc)
