"""Unit tests for trend lines and gradient classification (paper §4.3)."""

import pytest

from repro.core.trend import Gradient, fit_trend


def test_single_point_has_no_trend():
    t = fit_trend([(0.0, 1.0)])
    assert t.gradient is Gradient.NONE
    assert t.slope is None
    assert t.n_distinct == 1


def test_identical_points_collapse_to_no_trend():
    # Fig. 1 policy A: same ideal point in all five scenarios.
    t = fit_trend([(0.0, 1.0)] * 5)
    assert t.gradient is Gradient.NONE
    assert t.n_distinct == 1


def test_decreasing_gradient():
    # Higher performance at lower volatility.
    t = fit_trend([(0.1, 0.9), (0.3, 0.5), (0.5, 0.2)])
    assert t.gradient is Gradient.DECREASING
    assert t.slope < 0


def test_increasing_gradient():
    t = fit_trend([(0.1, 0.2), (0.3, 0.5), (0.5, 0.9)])
    assert t.gradient is Gradient.INCREASING
    assert t.slope > 0


def test_zero_gradient_constant_performance():
    # Fig. 1 policy B: performance 0.9 across volatility 0.3..0.6.
    t = fit_trend([(0.3, 0.9), (0.45, 0.9), (0.6, 0.9)])
    assert t.gradient is Gradient.ZERO
    assert t.slope == pytest.approx(0.0, abs=1e-9)


def test_vertical_stack_constant_performance_is_zero():
    t = fit_trend([(0.3, 0.9), (0.3, 0.9), (0.3, 0.9)])
    assert t.gradient is Gradient.NONE  # single distinct point
    t = fit_trend([(0.3, 0.9), (0.3, 0.9 + 1e-12)])
    assert t.gradient is Gradient.ZERO  # two points, same volatility & performance


def test_vertical_spread_has_no_defined_slope():
    t = fit_trend([(0.3, 0.2), (0.3, 0.9)])
    assert t.gradient is Gradient.NONE
    assert t.slope is None


def test_predict_on_fitted_line():
    t = fit_trend([(0.0, 0.0), (1.0, 1.0)])
    assert t.predict(0.5) == pytest.approx(0.5)


def test_predict_without_fit_raises():
    t = fit_trend([(0.1, 0.5)])
    with pytest.raises(ValueError):
        t.predict(0.2)


def test_empty_points_raise():
    with pytest.raises(ValueError):
        fit_trend([])
