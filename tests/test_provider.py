"""Unit tests for the CommercialComputingService provider."""

import pytest

from repro.economy.models import make_model
from repro.policies.fcfs_bf import FCFSBackfill
from repro.service.provider import CommercialComputingService
from repro.workload.job import Job


def make_job(job_id, submit=0.0, runtime=100.0, procs=1, deadline=1e6, budget=1e6, pr=0.0):
    return Job(job_id=job_id, submit_time=submit, runtime=runtime, estimate=runtime,
               procs=procs, deadline=deadline, budget=budget, penalty_rate=pr)


def run_service(jobs, model="commodity", total_procs=4, policy=None):
    svc = CommercialComputingService(
        policy or FCFSBackfill(), make_model(model), total_procs=total_procs
    )
    return svc.run(jobs)


def test_single_job_full_lifecycle():
    result = run_service([make_job(1, runtime=50.0, budget=100.0)])
    (out,) = result.outcomes
    assert out.accepted and out.deadline_met
    assert out.start_time == 0.0
    assert out.finish_time == 50.0
    assert out.utility == 50.0  # flat price: estimate * $1/s
    assert result.sim_time == 50.0


def test_objectives_from_result():
    result = run_service(
        [make_job(1, runtime=50.0, budget=100.0), make_job(2, runtime=50.0, budget=100.0, deadline=1e6)]
    )
    objs = result.objectives()
    assert objs.sla == 100.0
    assert objs.reliability == 100.0
    assert objs.profitability == pytest.approx(100.0 * 100.0 / 200.0)


def test_budget_rejection_in_commodity_model():
    # Flat cost 100 > budget 50: rejected in the commodity market.
    result = run_service([make_job(1, runtime=100.0, budget=50.0)])
    (out,) = result.outcomes
    assert not out.accepted


def test_same_job_accepted_in_bid_model():
    result = run_service([make_job(1, runtime=100.0, budget=50.0)], model="bid")
    (out,) = result.outcomes
    assert out.accepted
    assert out.utility == 50.0  # full bid, on time


def test_bid_model_penalty_applied():
    # Job 2 starts at t=100 (after job 1); its estimate predicts an on-time
    # finish (200 <= 220) so admission passes, but the actual runtime of 160
    # overruns the deadline by 40 s.
    job2 = Job(job_id=2, submit_time=0.0, runtime=160.0, estimate=100.0,
               procs=4, deadline=220.0, budget=100.0, penalty_rate=1.0)
    jobs = [make_job(1, runtime=100.0, procs=4, budget=1000.0), job2]
    result = run_service(jobs, model="bid")
    out2 = next(o for o in result.outcomes if o.job_id == 2)
    assert out2.accepted and not out2.deadline_met
    assert out2.finish_time == 260.0
    assert out2.utility == pytest.approx(100.0 - 1.0 * 40.0)


def test_ledger_records_settlements():
    result = run_service([make_job(1, runtime=50.0, budget=100.0)])
    assert len(result.ledger) == 1
    assert result.ledger.total_utility == pytest.approx(50.0)


def test_duplicate_job_ids_rejected():
    svc = CommercialComputingService(FCFSBackfill(), make_model("commodity"), total_procs=4)
    with pytest.raises(ValueError):
        svc.run([make_job(1), make_job(1)])


def test_policy_cannot_be_reused_across_services():
    policy = FCFSBackfill()
    CommercialComputingService(policy, make_model("commodity"), total_procs=4)
    with pytest.raises(Exception):
        CommercialComputingService(policy, make_model("commodity"), total_procs=4)


def test_arrivals_scheduled_at_submit_times():
    jobs = [make_job(1, submit=10.0, runtime=5.0), make_job(2, submit=30.0, runtime=5.0)]
    result = run_service(jobs)
    starts = {o.job_id: o.start_time for o in result.outcomes}
    assert starts == {1: 10.0, 2: 30.0}
