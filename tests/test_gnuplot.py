"""Unit tests for the gnuplot exporter."""

from repro.core.riskplot import RiskPlot
from repro.experiments.gnuplot import dat_content, export_figure, export_plot, gp_content


def make_plot():
    plot = RiskPlot(title="Fig. test — Set A: wait")
    plot.add_point("FCFS-BF", "workload", 0.1, 0.8)
    plot.add_point("FCFS-BF", "job mix", 0.2, 0.6)
    plot.add_point("Libra", "workload", 0.0, 1.0)
    plot.add_point("Libra", "job mix", 0.0, 1.0)
    return plot


def test_dat_blocks_per_policy():
    dat = dat_content(make_plot())
    assert "# policy: FCFS-BF" in dat
    assert "# policy: Libra" in dat
    assert "0.100000 0.800000" in dat
    # Gnuplot index separation: two blank lines between blocks.
    assert "\n\n\n" in dat


def test_gp_script_structure():
    plot = make_plot()
    gp = gp_content(plot, "x.dat", "x.png")
    assert "set output 'x.png'" in gp
    assert "set xrange [0:0.5]" in gp
    assert "set yrange [0:1]" in gp
    assert "'x.dat' index 0" in gp
    assert "'x.dat' index 1" in gp
    assert "title 'FCFS-BF'" in gp


def test_trend_lines_only_for_fitted_series():
    plot = make_plot()
    gp = gp_content(plot, "x.dat", "x.png")
    # FCFS-BF has a fitted trend (two distinct points); Libra (one distinct
    # point, the ideal corner) must not contribute a line.
    assert gp.count("with lines dt 2") == 1


def test_export_writes_relocatable_pair(tmp_path):
    dat, gp = export_plot(make_plot(), tmp_path, "figX")
    assert dat.exists() and gp.exists()
    assert "'figX.dat'" in gp.read_text()  # relative reference


def test_export_figure_all_panels(tmp_path):
    panels = {"a": make_plot(), "b": make_plot()}
    paths = export_figure(panels, tmp_path, "fig9")
    assert len(paths) == 2
    assert (tmp_path / "fig9a.gp").exists()
    assert (tmp_path / "fig9b.dat").exists()


def test_title_quoting():
    plot = RiskPlot(title="provider's view")
    plot.add_point("p", "s", 0.1, 0.5)
    gp = gp_content(plot, "d.dat", "o.png")
    assert "'provider''s view'" in gp
