"""Unit tests for service monitoring."""

import pytest

from repro.economy.models import make_model
from repro.policies.fcfs_bf import FCFSBackfill
from repro.policies.libra import Libra
from repro.service.monitoring import Sample, ServiceMonitor, TimeSeries
from repro.service.provider import CommercialComputingService
from repro.workload.job import Job


def make_job(job_id, submit=0.0, runtime=100.0, procs=2, deadline=1e6, budget=1e9):
    return Job(job_id=job_id, submit_time=submit, runtime=runtime, estimate=runtime,
               procs=procs, deadline=deadline, budget=budget)


def run_monitored(jobs, policy=None, cadence=None, procs=4):
    service = CommercialComputingService(
        policy or FCFSBackfill(), make_model("bid"), total_procs=procs
    )
    monitor = ServiceMonitor(service, cadence=cadence)
    result = service.run(jobs)
    return monitor, result


def test_monitor_tracks_counts():
    monitor, _ = run_monitored([make_job(1), make_job(2, submit=10.0)])
    last = monitor.series.samples[-1]
    assert last.submitted == 2
    assert last.accepted == 2
    assert last.fulfilled == 2
    assert last.rejected == 0
    assert last.acceptance_ratio == 1.0


def test_monitor_sees_rejections():
    doomed = make_job(2, submit=0.0, runtime=100.0, procs=4, deadline=50.0)
    monitor, _ = run_monitored([make_job(1, procs=4), doomed])
    last = monitor.series.samples[-1]
    assert last.rejected == 1
    assert last.acceptance_ratio == pytest.approx(0.5)


def test_utilization_series_rises_and_falls():
    monitor, _ = run_monitored([make_job(1, procs=4, runtime=100.0)])
    utils = monitor.series.values("utilization")
    assert utils.max() == pytest.approx(1.0)
    assert utils[-1] == pytest.approx(0.0)


def test_queue_length_observed():
    # Queue occupancy between transitions is only visible to the periodic
    # sampler (SLA events fire after the queue has already been popped).
    jobs = [make_job(1, procs=4, runtime=100.0), make_job(2, submit=1.0, procs=4)]
    monitor, _ = run_monitored(jobs, cadence=10.0)
    assert monitor.series.peak("queue_length") >= 1


def test_cadence_sampling_fills_quiet_periods():
    jobs = [make_job(1, runtime=1000.0, procs=1)]
    sparse, _ = run_monitored([j.clone() for j in jobs])
    dense, _ = run_monitored([j.clone() for j in jobs], cadence=50.0)
    assert len(dense.series) > len(sparse.series)


def test_invalid_cadence():
    service = CommercialComputingService(FCFSBackfill(), make_model("bid"), total_procs=4)
    with pytest.raises(ValueError):
        ServiceMonitor(service, cadence=0.0)


def test_monitoring_does_not_change_outcomes():
    jobs = [make_job(i, submit=float(i), runtime=60.0 + i, procs=1 + i % 3)
            for i in range(1, 12)]
    _, plain = run_monitored([j.clone() for j in jobs])
    _, observed = run_monitored([j.clone() for j in jobs], cadence=25.0)
    a = sorted((o.job_id, o.start_time, o.finish_time) for o in plain.outcomes)
    b = sorted((o.job_id, o.start_time, o.finish_time) for o in observed.outcomes)
    assert a == b


def test_time_weighted_mean():
    ts = TimeSeries()

    def sample(t, util):
        ts.samples.append(Sample(t, util, 0, 0, 0, 0, 0, 0.0))

    sample(0.0, 1.0)
    sample(10.0, 0.0)   # utilization 1.0 held for 10s
    sample(40.0, 0.0)   # utilization 0.0 held for 30s
    assert ts.time_weighted_mean("utilization") == pytest.approx(0.25)
    assert ts.mean("utilization") == pytest.approx(1.0 / 3.0)


def test_report_summary():
    monitor, _ = run_monitored([make_job(1, procs=4, runtime=100.0)])
    report = monitor.report()
    assert report["peak_utilization"] == pytest.approx(1.0)
    assert report["final_acceptance_ratio"] == 1.0
    assert report["samples"] == len(monitor.series)


def test_monitor_works_with_timeshared_policy():
    monitor, result = run_monitored(
        [make_job(1, procs=2, runtime=100.0, deadline=400.0)], policy=Libra()
    )
    assert result.objectives().sla == 100.0
    assert monitor.series.peak("utilization") > 0.0
