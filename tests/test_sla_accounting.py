"""Unit tests for SLA records and the accounting ledger."""

import pytest

from repro.service.accounting import AccountingLedger
from repro.service.sla import SLARecord, SLAStatus
from repro.workload.job import Job


def make_record(deadline=100.0):
    job = Job(job_id=1, submit_time=0.0, runtime=50.0, estimate=50.0, procs=1,
              deadline=deadline, budget=10.0)
    return SLARecord(job=job)


def test_lifecycle_happy_path():
    rec = make_record()
    assert rec.status is SLAStatus.SUBMITTED
    rec.accept(time=1.0, quoted_cost=5.0)
    assert rec.accepted
    rec.start(time=2.0)
    rec.finish(time=60.0, utility=5.0)
    assert rec.status is SLAStatus.FINISHED
    assert rec.deadline_met
    out = rec.outcome()
    assert out.accepted and out.deadline_met
    assert out.utility == 5.0
    assert out.start_time == 2.0


def test_rejection_path():
    rec = make_record()
    rec.reject("budget")
    assert rec.status is SLAStatus.REJECTED
    assert not rec.accepted
    assert rec.reject_reason == "budget"
    out = rec.outcome()
    assert not out.accepted and out.utility == 0.0


def test_deadline_miss_detected():
    rec = make_record(deadline=100.0)
    rec.accept(0.0)
    rec.start(0.0)
    rec.finish(time=150.0, utility=-3.0)
    assert not rec.deadline_met
    assert rec.outcome().utility == -3.0


def test_invalid_transitions_raise():
    rec = make_record()
    with pytest.raises(ValueError):
        rec.start(1.0)  # not accepted yet
    rec.accept(1.0)
    with pytest.raises(ValueError):
        rec.accept(2.0)  # double accept
    with pytest.raises(ValueError):
        rec.finish(3.0, 0.0)  # not started
    rec.start(2.0)
    with pytest.raises(ValueError):
        rec.reject("late")  # already running
    rec.finish(3.0, 1.0)
    with pytest.raises(ValueError):
        rec.start(4.0)


def test_ledger_totals_and_lookup():
    ledger = AccountingLedger()
    ledger.record(1, 10.0, 50.0, "charge")
    ledger.record(2, 20.0, -30.0, "penalty")
    ledger.record(1, 30.0, 5.0)
    assert len(ledger) == 3
    assert ledger.total_utility == pytest.approx(25.0)
    assert ledger.total_penalties == pytest.approx(-30.0)
    assert [e.utility for e in ledger.by_job(1)] == [50.0, 5.0]
    assert ledger.by_job(99) == []
