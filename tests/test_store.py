"""Unit tests for result persistence."""

import json

import pytest

from repro.core.objectives import Objective
from repro.economy.models import make_model
from repro.experiments.runner import run_grid
from repro.experiments.scenarios import ExperimentConfig, scenario_by_name
from repro.experiments.store import (
    StoreError,
    grid_from_dict,
    grid_to_dict,
    load_grid,
    outcomes_to_csv,
    save_grid,
    save_outcomes,
)
from repro.policies import make_policy
from repro.service.provider import CommercialComputingService
from repro.workload.job import Job


def small_grid():
    return run_grid(
        ["FCFS-BF", "Libra"], "bid",
        ExperimentConfig(n_jobs=25, total_procs=32), "A",
        [scenario_by_name("job mix")],
    )


def test_grid_roundtrip_exact():
    grid = small_grid()
    back = grid_from_dict(grid_to_dict(grid))
    assert back.model == grid.model
    assert back.set_name == grid.set_name
    assert back.policies == grid.policies
    assert back.scenarios == grid.scenarios
    for objective in Objective:
        for policy in grid.policies:
            for scenario in grid.scenarios:
                a = grid.separate[objective][policy][scenario]
                b = back.separate[objective][policy][scenario]
                assert a.performance == b.performance
                assert a.volatility == b.volatility


def test_grid_file_roundtrip(tmp_path):
    grid = small_grid()
    path = save_grid(grid, tmp_path / "grid.json")
    back = load_grid(path)
    assert back.policies == grid.policies
    # Plots still derive from the loaded grid.
    plot = back.separate_plot(Objective.SLA)
    assert set(plot.policies()) == set(grid.policies)


def test_loaded_document_is_valid_json(tmp_path):
    path = save_grid(small_grid(), tmp_path / "grid.json")
    doc = json.loads(path.read_text())
    assert doc["format"] == "repro-grid"
    assert doc["version"] == 1


def test_wrong_format_rejected():
    with pytest.raises(StoreError):
        grid_from_dict({"format": "something-else", "version": 1})
    with pytest.raises(StoreError):
        grid_from_dict({"format": "repro-grid", "version": 99})
    with pytest.raises(StoreError):
        grid_from_dict({"format": "repro-grid", "version": 1, "separate": {"SLA": {"p": {"s": [0.5]}}}})


def test_newer_version_names_the_remedy(tmp_path):
    # A document written by a future repro must fail with a message that
    # says *why* (newer version) and *what to do* (upgrade) — not a
    # generic "unsupported" that reads like corruption.
    grid = small_grid()
    path = save_grid(grid, tmp_path / "grid.json")
    doc = json.loads(path.read_text())
    doc["version"] = doc["version"] + 1
    path.write_text(json.dumps(doc))
    with pytest.raises(StoreError, match="newer.*upgrade"):
        load_grid(path)
    # Non-integer junk versions still get the generic rejection.
    with pytest.raises(StoreError, match="unsupported"):
        grid_from_dict({"format": "repro-grid", "version": "2.0"})


def test_truncated_grid_document_is_a_store_error(tmp_path):
    grid = small_grid()
    path = save_grid(grid, tmp_path / "grid.json")
    text = path.read_text()
    path.write_text(text[: len(text) // 2])
    with pytest.raises(StoreError, match="unreadable"):
        load_grid(path)
    # Re-saving over the truncated file recovers it completely.
    save_grid(grid, path)
    assert grid_to_dict(load_grid(path)) == grid_to_dict(grid)


def run_small_service():
    jobs = [
        Job(job_id=1, submit_time=0.0, runtime=50.0, estimate=50.0, procs=1,
            deadline=1e6, budget=100.0),
        Job(job_id=2, submit_time=5.0, runtime=50.0, estimate=50.0, procs=1,
            deadline=10.0, budget=100.0),  # rejected: deadline < estimate
    ]
    service = CommercialComputingService(
        make_policy("FCFS-BF"), make_model("bid"), total_procs=4
    )
    return service.run(jobs)


def test_outcomes_csv_content():
    csv = outcomes_to_csv(run_small_service())
    lines = csv.strip().splitlines()
    assert lines[0].startswith("job_id,submit_time")
    assert len(lines) == 3
    accepted_row = next(l for l in lines[1:] if l.startswith("1,"))
    assert ",1," in accepted_row  # accepted flag
    rejected_row = next(l for l in lines[1:] if l.startswith("2,"))
    assert ",0,,," in rejected_row  # not accepted, empty start/finish


def test_save_outcomes_file(tmp_path):
    path = save_outcomes(run_small_service(), tmp_path / "out.csv")
    assert path.read_text().count("\n") == 3
