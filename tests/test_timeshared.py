"""Unit tests for the time-shared (proportional-share) cluster model."""

import pytest

from repro.cluster.timeshared import ShareMode, TimeSharedCluster
from repro.sim import Simulator
from repro.workload.job import Job


def make_job(job_id=1, runtime=100.0, estimate=None, procs=1, submit=0.0, deadline=400.0):
    return Job(
        job_id=job_id,
        submit_time=submit,
        runtime=runtime,
        estimate=estimate if estimate is not None else runtime,
        procs=procs,
        deadline=deadline,
    )


def run_one(cluster, sim, job, share, nodes):
    finished = []
    cluster.admit(job, share, nodes, lambda j, t: finished.append((j.job_id, t)))
    sim.run()
    return finished


def test_single_job_gets_full_node():
    sim = Simulator()
    cluster = TimeSharedCluster(sim, total_procs=4)
    # Share 0.25 committed, but the job is alone: rate = share + free = 1.0.
    finished = run_one(cluster, sim, make_job(runtime=100.0), 0.25, [0])
    assert finished == [(1, pytest.approx(100.0))]


def test_two_jobs_share_capacity():
    sim = Simulator()
    cluster = TimeSharedCluster(sim, total_procs=1)
    done = []
    j1 = make_job(1, runtime=100.0, deadline=400.0)
    j2 = make_job(2, runtime=100.0, deadline=400.0)
    cluster.admit(j1, 0.5, [0], lambda j, t: done.append((j.job_id, t)))
    cluster.admit(j2, 0.5, [0], lambda j, t: done.append((j.job_id, t)))
    sim.run()
    # Each gets rate 0.5 + 0/2 = 0.5 -> 200 s apiece.
    assert done[0] == (1, pytest.approx(200.0))
    assert done[1] == (2, pytest.approx(200.0))


def test_free_capacity_redistributed():
    sim = Simulator()
    cluster = TimeSharedCluster(sim, total_procs=1)
    done = []
    # Committed shares 0.25 each; free 0.5 split between 2 jobs => rate 0.5.
    for jid in (1, 2):
        cluster.admit(
            make_job(jid, runtime=100.0, deadline=400.0), 0.25, [0],
            lambda j, t: done.append((j.job_id, t)),
        )
    sim.run()
    assert done[0][1] == pytest.approx(200.0)


def test_completion_releases_share_and_speeds_up_rest():
    sim = Simulator()
    cluster = TimeSharedCluster(sim, total_procs=1)
    done = {}
    cluster.admit(make_job(1, runtime=50.0, deadline=400.0), 0.5, [0],
                  lambda j, t: done.setdefault(j.job_id, t))
    cluster.admit(make_job(2, runtime=100.0, deadline=400.0), 0.5, [0],
                  lambda j, t: done.setdefault(j.job_id, t))
    sim.run()
    # Both run at 0.5 until job 1 finishes at t=100 (50/0.5); job 2 has 50
    # work left and then runs alone at rate 1 -> finishes at 150.
    assert done[1] == pytest.approx(100.0)
    assert done[2] == pytest.approx(150.0)


def test_parallel_job_gang_rate_is_min_over_nodes():
    sim = Simulator()
    cluster = TimeSharedCluster(sim, total_procs=2)
    done = {}
    # Competitor on node 0 squeezes the parallel job's rate there.
    cluster.admit(make_job(1, runtime=100.0, deadline=400.0), 0.5, [0],
                  lambda j, t: done.setdefault(j.job_id, t))
    cluster.admit(make_job(2, runtime=100.0, procs=2, deadline=400.0), 0.5, [0, 1],
                  lambda j, t: done.setdefault(j.job_id, t))
    sim.run()
    # On node 0 both jobs run at 0.5; on node 1 job 2 would get 1.0 alone,
    # but gang progress = min(0.5, 1.0) = 0.5 -> 200 s.
    assert done[2] == pytest.approx(200.0)


def test_feasible_nodes_respect_capacity():
    sim = Simulator()
    cluster = TimeSharedCluster(sim, total_procs=2)
    cluster.admit(make_job(1, runtime=100.0, deadline=125.0), 0.8, [0], lambda j, t: None)
    assert cluster.feasible_nodes(0.5) == [1]
    assert cluster.feasible_nodes(0.1) == [0, 1]  # best fit: node 0 fuller


def test_best_fit_prefers_most_loaded_feasible_node():
    sim = Simulator()
    cluster = TimeSharedCluster(sim, total_procs=3)
    cluster.admit(make_job(1, runtime=10.0, deadline=100.0), 0.6, [0], lambda j, t: None)
    cluster.admit(make_job(2, runtime=10.0, deadline=100.0), 0.3, [1], lambda j, t: None)
    nodes = cluster.feasible_nodes(0.3)
    assert nodes == [0, 1, 2]


def test_admission_validation():
    sim = Simulator()
    cluster = TimeSharedCluster(sim, total_procs=2)
    job = make_job(1, procs=2)
    with pytest.raises(ValueError):
        cluster.admit(job, 0.5, [0], lambda j, t: None)  # wrong node count
    with pytest.raises(ValueError):
        cluster.admit(job, 0.5, [0, 0], lambda j, t: None)  # duplicate nodes
    with pytest.raises(ValueError):
        cluster.admit(job, 0.0, [0, 1], lambda j, t: None)  # zero share
    cluster.admit(job, 0.5, [0, 1], lambda j, t: None)
    with pytest.raises(ValueError):
        cluster.admit(job, 0.5, [0, 1], lambda j, t: None)  # already running


def test_underestimated_job_flags_risk_in_dynamic_mode():
    sim = Simulator()
    cluster = TimeSharedCluster(sim, total_procs=1, mode=ShareMode.DYNAMIC)
    # Estimate 50 but actual 100: past its estimate halfway through.
    job = make_job(1, runtime=100.0, estimate=50.0, deadline=400.0)
    cluster.admit(job, 0.5, [0], lambda j, t: None)
    sim.run(until=60.0)
    assert cluster.node_has_risk(0)
    sim.run()
    assert not cluster.node_has_risk(0)  # finished, risk cleared


def test_static_mode_never_reports_risk_based_load():
    sim = Simulator()
    cluster = TimeSharedCluster(sim, total_procs=1, mode=ShareMode.STATIC)
    job = make_job(1, runtime=100.0, estimate=100.0, deadline=200.0)
    cluster.admit(job, 0.5, [0], lambda j, t: None)
    assert cluster.node_share_load(0) == pytest.approx(0.5)


def test_dynamic_load_shrinks_as_job_progresses():
    sim = Simulator()
    cluster = TimeSharedCluster(sim, total_procs=1, mode=ShareMode.DYNAMIC)
    # Needs 100s of work in a 200s window: required rate 0.5 at t=0.
    job = make_job(1, runtime=100.0, estimate=100.0, deadline=200.0)
    cluster.admit(job, 0.5, [0], lambda j, t: None)
    assert cluster.node_share_load(0) == pytest.approx(0.5)
    sim.run(until=50.0)
    # Ran alone at rate 1.0: 50 work left, 150s window -> 1/3 required.
    assert cluster.node_share_load(0) == pytest.approx(50.0 / 150.0, rel=1e-6)


def test_utilization_tracks_commitments():
    sim = Simulator()
    cluster = TimeSharedCluster(sim, total_procs=4)
    assert cluster.utilization() == 0.0
    cluster.admit(make_job(1, procs=2, deadline=400.0), 0.5, [0, 1], lambda j, t: None)
    assert cluster.utilization() == pytest.approx(0.25)
    assert cluster.total_committed() == pytest.approx(1.0)


def test_deadline_met_with_exact_share():
    sim = Simulator()
    cluster = TimeSharedCluster(sim, total_procs=1)
    done = {}
    # Three jobs, each needing share 1/3 to meet its deadline exactly.
    for jid in (1, 2, 3):
        job = make_job(jid, runtime=100.0, deadline=300.0)
        cluster.admit(job, 100.0 / 300.0, [0], lambda j, t: done.setdefault(j.job_id, t))
    sim.run()
    for jid in (1, 2, 3):
        assert done[jid] <= 300.0 + 1e-6


def test_invalid_cluster_size():
    with pytest.raises(ValueError):
        TimeSharedCluster(Simulator(), total_procs=0)
