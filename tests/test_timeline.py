"""Unit tests for the conservative-backfilling availability timeline."""

import pytest

from repro.cluster.profile import Timeline


def test_empty_profile_is_flat():
    t = Timeline(0.0, 8)
    assert t.free_at(0.0) == 8
    assert t.free_at(1e9) == 8
    assert t.segments() == [(0.0, 8)]


def test_releases_build_staircase():
    t = Timeline(0.0, 2, [(100.0, 4), (50.0, 2)])
    assert t.free_at(0.0) == 2
    assert t.free_at(50.0) == 4
    assert t.free_at(99.0) == 4
    assert t.free_at(100.0) == 8


def test_past_releases_clamp_to_start():
    t = Timeline(50.0, 0, [(10.0, 8)])
    assert t.free_at(50.0) == 8


def test_simultaneous_releases_merge():
    t = Timeline(0.0, 0, [(10.0, 2), (10.0, 3)])
    assert t.free_at(10.0) == 5
    assert len(t.segments()) == 2


def test_find_earliest_immediate():
    t = Timeline(0.0, 8)
    assert t.find_earliest(4, 100.0) == 0.0


def test_find_earliest_waits_for_capacity():
    t = Timeline(0.0, 2, [(100.0, 4)])
    assert t.find_earliest(4, 50.0) == 100.0


def test_find_earliest_needs_whole_window():
    # 4 procs free only until t=30 (reservation), so a 50s job must wait.
    t = Timeline(0.0, 4)
    t.reserve(30.0, 4, 20.0)   # [30, 50) fully busy
    assert t.find_earliest(4, 50.0) == 50.0
    assert t.find_earliest(4, 30.0) == 0.0  # fits exactly before


def test_reserve_carves_capacity():
    t = Timeline(0.0, 8)
    t.reserve(10.0, 3, 20.0)
    assert t.free_at(5.0) == 8
    assert t.free_at(10.0) == 5
    assert t.free_at(29.0) == 5
    assert t.free_at(30.0) == 8


def test_reserve_overflow_raises():
    t = Timeline(0.0, 4)
    t.reserve(0.0, 4, 10.0)
    with pytest.raises(ValueError):
        t.reserve(5.0, 1, 1.0)


def test_stacked_reservations():
    t = Timeline(0.0, 8)
    t.reserve(0.0, 4, 10.0)
    t.reserve(5.0, 4, 10.0)
    assert t.free_at(0.0) == 4
    assert t.free_at(5.0) == 0
    assert t.free_at(10.0) == 4
    assert t.free_at(15.0) == 8


def test_find_respects_not_before():
    t = Timeline(0.0, 8)
    assert t.find_earliest(2, 10.0, not_before=42.0) == 42.0


def test_invalid_requests():
    t = Timeline(0.0, 8)
    with pytest.raises(ValueError):
        t.find_earliest(0, 10.0)
    with pytest.raises(ValueError):
        t.find_earliest(2, -1.0)
    with pytest.raises(ValueError):
        t.free_at(-1.0)
