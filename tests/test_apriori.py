"""Unit tests for the a priori risk analysis (paper §7 follow-on)."""

import pytest

from repro.core.apriori import (
    Severity,
    build_profiles,
    grade,
    recommend_policy,
    risk_register,
)
from repro.core.objectives import Objective
from repro.core.separate import SeparateRisk


def make_grid():
    """Two policies, two objectives, two scenarios.

    `steady` is strong everywhere; `erratic` is strong on SLA but collapses
    with high volatility on reliability when the workload varies.
    """
    return {
        Objective.SLA: {
            "steady": {
                "workload": SeparateRisk(0.90, 0.05),
                "job mix": SeparateRisk(0.88, 0.04),
            },
            "erratic": {
                "workload": SeparateRisk(0.95, 0.10),
                "job mix": SeparateRisk(0.93, 0.08),
            },
        },
        Objective.RELIABILITY: {
            "steady": {
                "workload": SeparateRisk(0.92, 0.03),
                "job mix": SeparateRisk(0.94, 0.02),
            },
            "erratic": {
                "workload": SeparateRisk(0.40, 0.35),
                "job mix": SeparateRisk(0.85, 0.10),
            },
        },
    }


def test_grade_bands():
    assert grade(1.0, 0.0) is Severity.LOW
    assert grade(0.8, 0.2) is Severity.MODERATE
    assert grade(0.45, 0.15) is Severity.HIGH
    assert grade(0.4, 0.3) is Severity.CRITICAL
    # CRITICAL needs BOTH weak performance and real volatility.
    assert grade(0.1, 0.0) is Severity.HIGH


def test_profiles_aggregate_means():
    profiles = build_profiles(make_grid())
    steady = profiles["steady"]
    assert steady.aggregate[Objective.SLA].performance == pytest.approx(0.89)
    assert steady.aggregate[Objective.SLA].volatility == pytest.approx(0.045)


def test_profiles_identify_risk_drivers():
    profiles = build_profiles(make_grid())
    erratic = profiles["erratic"]
    worst = erratic.worst_performance[Objective.RELIABILITY]
    assert worst.scenario == "workload"
    assert worst.severity is Severity.CRITICAL
    assert erratic.highest_volatility[Objective.RELIABILITY].scenario == "workload"


def test_profile_overall_and_severity():
    profiles = build_profiles(make_grid())
    steady = profiles["steady"]
    overall = steady.overall()
    assert 0.88 <= overall.performance <= 0.93
    assert steady.severity(Objective.SLA) is Severity.LOW


def test_empty_grid_rejected():
    with pytest.raises(ValueError):
        build_profiles({})


def test_register_lists_material_exposures_most_severe_first():
    register = risk_register(make_grid(), minimum=Severity.MODERATE)
    assert register  # erratic reliability under workload must appear
    assert register[0].policy == "erratic"
    assert register[0].objective is Objective.RELIABILITY
    assert register[0].severity is Severity.CRITICAL
    severities = [e.severity for e in register]
    assert severities == sorted(severities, reverse=True)


def test_register_minimum_filter():
    all_entries = risk_register(make_grid(), minimum=Severity.LOW)
    critical_only = risk_register(make_grid(), minimum=Severity.CRITICAL)
    assert len(critical_only) <= len(all_entries)
    assert all(e.severity is Severity.CRITICAL for e in critical_only)


def test_register_rows_render():
    row = risk_register(make_grid())[0].as_row()
    assert row["severity"] == "CRITICAL"
    assert "reliability" in row["note"]


def test_recommendation_prefers_tolerant_policy():
    rec = recommend_policy(make_grid(), volatility_tolerance=0.1)
    # erratic's mean volatility on reliability (0.225) blows the tolerance.
    assert rec.policy == "steady"
    assert rec.within_tolerance
    assert "dominant risk driver" in rec.rationale
    assert rec.alternatives == ("erratic",)


def test_recommendation_falls_back_when_none_qualify():
    rec = recommend_policy(make_grid(), volatility_tolerance=0.0)
    assert not rec.within_tolerance
    assert rec.policy in ("steady", "erratic")


def test_recommendation_respects_weights():
    # All weight on SLA: erratic wins (higher SLA performance).
    weights = {Objective.SLA: 1.0, Objective.RELIABILITY: 0.0}
    rec = recommend_policy(make_grid(), weights=weights, volatility_tolerance=1.0)
    assert rec.policy == "erratic"


def test_recommendation_validates_tolerance():
    with pytest.raises(ValueError):
        recommend_policy(make_grid(), volatility_tolerance=-0.5)


def test_grid_analysis_exposes_profiles():
    from repro.experiments.runner import run_grid
    from repro.experiments.scenarios import ExperimentConfig, scenario_by_name

    grid = run_grid(
        ["FCFS-BF"], "bid",
        ExperimentConfig(n_jobs=25, total_procs=32), "A",
        [scenario_by_name("job mix")],
    )
    profiles = grid.risk_profiles()
    assert set(profiles) == {"FCFS-BF"}
    assert Objective.SLA in profiles["FCFS-BF"].aggregate
