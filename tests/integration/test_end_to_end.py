"""Integration tests: full workload → policies → risk analysis.

These exercise the whole stack at a moderate scale and assert the paper's
*robust* qualitative findings — the ones §6 states categorically.  Seeds and
scales are fixed so the assertions are deterministic.
"""

import pytest

from repro.core.objectives import Objective
from repro.experiments.runner import RunCache, run_grid, run_single
from repro.experiments.scenarios import SCENARIOS, ExperimentConfig, scenario_by_name

BASE = ExperimentConfig(n_jobs=250, total_procs=128)
CACHE = RunCache()


def objectives(policy, model, set_name="A", **over):
    cfg = BASE.for_set(set_name).with_values(**over)
    return run_single(cfg, policy, model, CACHE)


# -- §6.1 commodity market ----------------------------------------------------

def test_libra_family_has_ideal_wait():
    """Jobs are examined at submission: zero wait for SLA acceptance."""
    for policy in ("Libra", "Libra+$"):
        for set_name in ("A", "B"):
            assert objectives(policy, "commodity", set_name).wait == 0.0


def test_backfillers_wait_positive_under_load():
    for policy in ("FCFS-BF", "SJF-BF", "EDF-BF"):
        assert objectives(policy, "commodity").wait > 0.0


def test_backfillers_reliability_ideal_with_accurate_estimates():
    """Generous admission + accurate estimates: accepted SLAs always met."""
    for policy in ("FCFS-BF", "SJF-BF", "EDF-BF"):
        assert objectives(policy, "commodity", "A").reliability == 100.0


def test_libra_reliability_suffers_under_trace_estimates():
    """Set B (§6.1): inaccurate estimates break Libra's accepted SLAs."""
    rel_a = objectives("Libra", "commodity", "A").reliability
    rel_b = objectives("Libra", "commodity", "B").reliability
    assert rel_a == pytest.approx(100.0, abs=1.0)
    assert rel_b < rel_a


def test_libra_dollar_earns_more_accepts_fewer():
    """§6.1: the enhanced pricing function trades SLA for profitability."""
    libra = objectives("Libra", "commodity", "A")
    dollar = objectives("Libra+$", "commodity", "A")
    assert dollar.profitability > libra.profitability
    assert dollar.sla <= libra.sla


def test_libra_dollar_profitability_best_of_commodity_policies():
    dollar = objectives("Libra+$", "commodity", "A").profitability
    for policy in ("FCFS-BF", "SJF-BF", "EDF-BF", "Libra"):
        assert dollar > objectives(policy, "commodity", "A").profitability


def test_inaccuracy_reduces_libra_acceptance():
    """§5.2: over-estimation makes admission control reject more jobs."""
    sla_a = objectives("Libra", "commodity", "A").sla
    sla_b = objectives("Libra", "commodity", "B").sla
    assert sla_b < sla_a


# -- §6.2 bid-based model ------------------------------------------------------

def test_bid_wait_ideal_for_libra_family():
    for policy in ("Libra", "LibraRiskD"):
        assert objectives(policy, "bid").wait == 0.0


def test_first_reward_is_risk_averse():
    """§6.2: FirstReward accepts the fewest jobs of the bid policies."""
    fr = objectives("FirstReward", "bid").sla
    for policy in ("FCFS-BF", "EDF-BF", "Libra", "LibraRiskD"):
        assert fr < objectives(policy, "bid").sla


def test_libra_riskd_handles_inaccuracy_better_than_libra():
    """§6.2 headline: LibraRiskD beats Libra under trace estimates."""
    libra = objectives("Libra", "bid", "B")
    riskd = objectives("LibraRiskD", "bid", "B")
    assert riskd.profitability > libra.profitability
    assert riskd.reliability >= libra.reliability - 1.0


def test_libra_riskd_equivalent_to_libra_with_accurate_estimates():
    """With 0% inaccuracy there is no risk to dodge: similar outcomes."""
    libra = objectives("Libra", "bid", "A")
    riskd = objectives("LibraRiskD", "bid", "A")
    assert riskd.sla == pytest.approx(libra.sla, abs=8.0)


def test_backfillers_reliability_ideal_in_bid_set_a():
    for policy in ("FCFS-BF", "EDF-BF"):
        assert objectives(policy, "bid", "A").reliability == 100.0


# -- risk-analysis reductions ---------------------------------------------------

@pytest.mark.slow
def test_grid_produces_valid_risk_statistics():
    scenarios = [scenario_by_name("workload"), scenario_by_name("job mix")]
    grid = run_grid(
        ["FCFS-BF", "Libra"], "commodity",
        ExperimentConfig(n_jobs=120, total_procs=128), "A", scenarios, CACHE,
    )
    for objective in Objective:
        for policy in grid.policies:
            for scenario in grid.scenarios:
                risk = grid.separate[objective][policy][scenario]
                assert 0.0 <= risk.performance <= 1.0
                assert 0.0 <= risk.volatility <= 0.5


@pytest.mark.slow
def test_wait_plot_shows_libra_ideal_and_backfillers_not():
    scenarios = [scenario_by_name("workload")]
    grid = run_grid(
        ["FCFS-BF", "SJF-BF", "EDF-BF", "Libra"], "commodity",
        ExperimentConfig(n_jobs=120, total_procs=128), "A", scenarios, CACHE,
    )
    plot = grid.separate_plot(Objective.WAIT)
    assert plot.series["Libra"].is_ideal()
    assert not plot.series["FCFS-BF"].is_ideal()
