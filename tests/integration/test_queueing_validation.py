"""Queueing-theory validation of the simulation substrate.

If the event engine and the space-shared cluster are correct, a
single-processor FCFS system fed Poisson arrivals with exponential service
must reproduce the M/M/1 formulas.  These tests drive exactly that system
through the *full* service stack (provider, policy, SLA records) and check
the analytic answers — strong end-to-end evidence that waiting, service,
and utilisation arithmetic are right.
"""

import numpy as np
import pytest

from repro.core.car import response_times
from repro.economy.models import make_model
from repro.policies.fcfs import FCFSPlain
from repro.service.provider import CommercialComputingService
from repro.workload.job import Job


def mm1_workload(n, lam, mu, seed):
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / lam, size=n)
    submits = np.cumsum(gaps)
    services = np.maximum(rng.exponential(1.0 / mu, size=n), 1e-9)
    return [
        Job(job_id=i + 1, submit_time=float(submits[i]), runtime=float(services[i]),
            estimate=float(services[i]), procs=1, deadline=1e12, budget=1e12)
        for i in range(n)
    ]


def run_mm1(n=20_000, lam=0.5, mu=1.0, seed=0):
    jobs = mm1_workload(n, lam, mu, seed)
    service = CommercialComputingService(
        FCFSPlain(admission_control=False), make_model("bid"), total_procs=1
    )
    return service.run(jobs)


@pytest.mark.slow
def test_mm1_mean_response_time():
    lam, mu = 0.5, 1.0
    result = run_mm1(lam=lam, mu=mu)
    # Discard a warmup prefix; M/M/1: E[T] = 1 / (mu - lam) = 2.0.
    times = response_times(result.outcomes)[2000:]
    assert times.mean() == pytest.approx(1.0 / (mu - lam), rel=0.08)


@pytest.mark.slow
def test_mm1_utilization():
    lam, mu = 0.5, 1.0
    result = run_mm1(lam=lam, mu=mu)
    busy = sum(o.finish_time - o.start_time for o in result.outcomes)
    assert busy / result.sim_time == pytest.approx(lam / mu, rel=0.05)


@pytest.mark.slow
def test_mm1_response_scales_with_load():
    light = response_times(run_mm1(n=8000, lam=0.3, seed=1).outcomes)[1000:].mean()
    heavy = response_times(run_mm1(n=8000, lam=0.8, seed=1).outcomes)[1000:].mean()
    # E[T] at rho=0.3 is 1/0.7 ~ 1.43; at rho=0.8 it's 1/0.2 = 5.0.
    assert heavy > 2.5 * light


@pytest.mark.slow
def test_md1_waits_half_of_mm1():
    """Deterministic service (M/D/1) halves the queueing delay vs M/M/1 —
    the Pollaczek-Khinchine sanity check on the queueing dynamics."""
    lam, mu, n = 0.5, 1.0, 20_000
    rng = np.random.default_rng(3)
    gaps = rng.exponential(1.0 / lam, size=n)
    submits = np.cumsum(gaps)
    jobs = [
        Job(job_id=i + 1, submit_time=float(submits[i]), runtime=1.0 / mu,
            estimate=1.0 / mu, procs=1, deadline=1e12, budget=1e12)
        for i in range(n)
    ]
    service = CommercialComputingService(
        FCFSPlain(admission_control=False), make_model("bid"), total_procs=1
    )
    result = service.run(jobs)
    waits = np.array([o.start_time - o.submit_time for o in result.outcomes])[2000:]
    rho = lam / mu
    expected_wq = rho / (2 * mu * (1 - rho))  # P-K for M/D/1: 0.5
    assert waits.mean() == pytest.approx(expected_wq, rel=0.10)
