"""Unit tests for the Table VI scenario grid."""

import pytest

from repro.experiments.scenarios import (
    SCENARIOS,
    ExperimentConfig,
    Scenario,
    scenario_by_name,
)


def test_twelve_scenarios():
    assert len(SCENARIOS) == 12
    names = [s.name for s in SCENARIOS]
    assert names[:3] == ["job mix", "workload", "inaccuracy"]
    # Three parameters x {bias, ratio, low mean} = nine more.
    for param in ("deadline", "budget", "penalty"):
        for kind in ("bias", "ratio", "low mean"):
            assert f"{param} {kind}" in names


def test_six_values_per_scenario():
    for s in SCENARIOS:
        assert len(s.values) == 6


def test_default_value_belongs_to_each_scenario():
    # Table VI: the default (underlined) value is one of the six varying
    # values, so the default configuration is a point of every scenario.
    base = ExperimentConfig()
    for s in SCENARIOS:
        assert getattr(base, s.field_name) in s.values


def test_configs_vary_only_one_field():
    base = ExperimentConfig()
    scenario = scenario_by_name("workload")
    configs = scenario.configs(base)
    assert len(configs) == 6
    assert [c.arrival_delay_factor for c in configs] == list(scenario.values)
    for c in configs:
        assert c.with_values(arrival_delay_factor=base.arrival_delay_factor) == base


def test_set_a_and_b_only_differ_in_inaccuracy():
    base = ExperimentConfig()
    a = base.for_set("A")
    b = base.for_set("B")
    assert a.inaccuracy_pct == 0.0
    assert b.inaccuracy_pct == 100.0
    assert a.with_values(inaccuracy_pct=100.0) == b
    with pytest.raises(ValueError):
        base.for_set("C")


def test_inaccuracy_scenario_overrides_set_b_default():
    base = ExperimentConfig().for_set("B")
    configs = scenario_by_name("inaccuracy").configs(base)
    assert [c.inaccuracy_pct for c in configs] == [0.0, 20.0, 40.0, 60.0, 80.0, 100.0]


def test_qos_spec_reflects_config():
    cfg = ExperimentConfig(
        pct_high_urgency=60.0,
        deadline_low_mean=2.0, deadline_ratio=8.0, deadline_bias=6.0,
    )
    spec = cfg.qos_spec()
    assert spec.pct_high_urgency == 60.0
    assert spec.deadline.low_mean == 2.0
    assert spec.deadline.high_low_ratio == 8.0
    assert spec.deadline.bias == 6.0


def test_config_key_is_hashable_identity():
    a = ExperimentConfig()
    b = ExperimentConfig()
    c = ExperimentConfig(seed=1)
    assert a.key() == b.key()
    assert a.key() != c.key()
    {a.key(): 1}


def test_scenario_labels():
    labels = scenario_by_name("job mix").labels()
    assert labels[0] == "job mix=0"
    assert labels[-1] == "job mix=100"


def test_unknown_scenario_raises():
    with pytest.raises(ValueError):
        scenario_by_name("phase of the moon")
