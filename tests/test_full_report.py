"""Unit tests for the one-command reproduction driver."""

import json

import pytest

from repro.experiments.full_report import generate_report
from repro.experiments.scenarios import ExperimentConfig, scenario_by_name

TINY = ExperimentConfig(n_jobs=20, total_procs=32)
SCEN = [scenario_by_name("job mix")]


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    out = tmp_path_factory.mktemp("report")
    index = generate_report(out, base=TINY, scenarios=SCEN)
    return out, index


def test_report_writes_all_tables(report):
    out, _ = report
    for n in ("i", "ii", "iii", "iv", "v", "vi"):
        assert (out / "tables" / f"table_{n}.txt").exists()


def test_report_writes_all_figures(report):
    out, _ = report
    for fig in ("fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"):
        assert (out / "figures" / f"{fig}.txt").exists()
    assert (out / "figures" / "svg" / "fig8b.svg").exists()
    assert (out / "figures" / "gnuplot" / "fig5a.gp").exists()
    assert (out / "figures" / "gnuplot" / "fig5a.dat").exists()


def test_report_grids_are_loadable(report):
    out, _ = report
    from repro.experiments.store import load_grid

    grid = load_grid(out / "grids" / "grid_bid_setB.json")
    assert grid.model == "bid"
    assert grid.set_name == "B"
    assert "LibraRiskD" in grid.policies


def test_report_readme_summarises(report):
    out, index = report
    text = (out / "README.md").read_text()
    assert "Four-objective rankings" in text
    assert "commodity / Set A" in text
    assert "A priori recommendations" in text
    assert index["simulations"] > 0


def test_recommendations_per_market(report):
    _, index = report
    assert set(index["recommendations"]) == {
        "commodity/Set A", "commodity/Set B", "bid/Set A", "bid/Set B",
    }
    for rec in index["recommendations"].values():
        assert rec.policy
