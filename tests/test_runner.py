"""Unit tests for the experiment runner (workload building, caching,
scenario reduction)."""

import pytest

from repro.core.objectives import Objective
from repro.experiments.runner import (
    GridAnalysis,
    RunCache,
    build_workload,
    run_grid,
    run_scenario,
    run_single,
)
from repro.experiments.scenarios import ExperimentConfig, scenario_by_name

SMALL = ExperimentConfig(n_jobs=40, total_procs=32)


def test_build_workload_is_deterministic():
    a = build_workload(SMALL)
    b = build_workload(SMALL)
    assert [(j.submit_time, j.runtime, j.deadline, j.budget) for j in a] == [
        (j.submit_time, j.runtime, j.deadline, j.budget) for j in b
    ]


def test_arrival_factor_scales_interarrivals():
    fast = build_workload(SMALL.with_values(arrival_delay_factor=0.1))
    slow = build_workload(SMALL.with_values(arrival_delay_factor=1.0))
    assert fast[-1].submit_time == pytest.approx(0.1 * slow[-1].submit_time)
    # Same trace otherwise.
    assert [j.runtime for j in fast] == [j.runtime for j in slow]


def test_invalid_arrival_factor():
    with pytest.raises(ValueError):
        build_workload(SMALL.with_values(arrival_delay_factor=0.0))


def test_build_workload_returns_freshly_owned_jobs():
    # The builder memoises the expensive base trace, so the jobs it hands
    # out must be clones: mutating one workload (as the simulation engine
    # does) must never bleed into a later build from the same trace.
    first = build_workload(SMALL)
    snapshot = [(j.submit_time, j.runtime, j.estimate, j.deadline) for j in first]
    for job in first:
        job.submit_time = -1.0
        job.estimate = 0.0
    second = build_workload(SMALL)
    assert [(j.submit_time, j.runtime, j.estimate, j.deadline) for j in second] == snapshot
    assert all(a is not b for a, b in zip(first, second))


def test_build_workload_variants_do_not_cross_contaminate():
    # Scaled arrivals and perturbed estimates are derived per call; the
    # shared trace must keep its original values throughout.
    exact = build_workload(SMALL.with_values(inaccuracy_pct=0.0))
    build_workload(SMALL.with_values(arrival_delay_factor=0.1, inaccuracy_pct=100.0))
    again = build_workload(SMALL.with_values(inaccuracy_pct=0.0))
    assert [j.submit_time for j in again] == [j.submit_time for j in exact]
    assert [j.estimate for j in again] == [j.estimate for j in exact]


def test_inaccuracy_config_controls_estimates():
    exact = build_workload(SMALL.with_values(inaccuracy_pct=0.0))
    trace = build_workload(SMALL.with_values(inaccuracy_pct=100.0))
    assert all(j.estimate == pytest.approx(j.runtime) for j in exact)
    assert any(j.estimate != j.runtime for j in trace)


def test_run_single_returns_objectives():
    objs = run_single(SMALL, "FCFS-BF", "commodity")
    assert 0.0 <= objs.sla <= 100.0
    assert 0.0 <= objs.reliability <= 100.0
    assert objs.wait >= 0.0


def test_run_single_cache_hits():
    cache = RunCache()
    a = run_single(SMALL, "FCFS-BF", "bid", cache)
    b = run_single(SMALL, "FCFS-BF", "bid", cache)
    assert a == b
    assert cache.hits == 1
    assert cache.misses == 1
    assert len(cache) == 1


def test_cache_distinguishes_policy_and_model():
    cache = RunCache()
    run_single(SMALL, "FCFS-BF", "bid", cache)
    run_single(SMALL, "FCFS-BF", "commodity", cache)
    run_single(SMALL, "EDF-BF", "bid", cache)
    assert len(cache) == 3
    assert cache.hits == 0


def test_run_scenario_shape():
    scenario = scenario_by_name("job mix")
    result = run_scenario(scenario, ["FCFS-BF", "EDF-BF"], "bid", SMALL)
    assert set(result.keys()) == set(Objective)
    for objective in Objective:
        assert set(result[objective].keys()) == {"FCFS-BF", "EDF-BF"}
        for risk in result[objective].values():
            assert 0.0 <= risk.performance <= 1.0
            assert risk.volatility >= 0.0


def test_run_grid_and_plots():
    scenarios = [scenario_by_name("job mix"), scenario_by_name("workload")]
    grid = run_grid(["FCFS-BF", "EDF-BF"], "bid", SMALL, "A", scenarios)
    assert isinstance(grid, GridAnalysis)
    assert grid.scenarios == ("job mix", "workload")
    plot = grid.separate_plot(Objective.SLA)
    assert set(plot.policies()) == {"FCFS-BF", "EDF-BF"}
    assert len(plot.series["FCFS-BF"].points) == 2  # one point per scenario
    combined = grid.integrated_plot([Objective.SLA, Objective.WAIT])
    assert len(combined.series["EDF-BF"].points) == 2


def test_grid_cache_reuses_default_config():
    scenarios = [scenario_by_name("job mix"), scenario_by_name("workload")]
    cache = RunCache()
    run_grid(["FCFS-BF"], "bid", SMALL, "A", scenarios, cache)
    # Default config (job mix=20, workload=0.25) appears in both scenarios.
    assert cache.hits >= 1
