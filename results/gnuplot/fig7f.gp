set terminal pngcairo size 640,480
set output 'fig7f.png'
set title 'Fig. 7f — Set B: wait, SLA, profitability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig7f.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    1.228322*x + 0.465558 with lines dt 2 lc 1 notitle, \
    'fig7f.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'EDF-BF', \
    1.515561*x + 0.542060 with lines dt 2 lc 2 notitle, \
    'fig7f.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'Libra', \
    0.308829*x + 0.751301 with lines dt 2 lc 3 notitle, \
    'fig7f.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'LibraRiskD', \
    0.533949*x + 0.757966 with lines dt 2 lc 4 notitle, \
    'fig7f.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'FirstReward', \
    -0.370614*x + 0.427535 with lines dt 2 lc 5 notitle
