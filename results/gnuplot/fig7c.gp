set terminal pngcairo size 640,480
set output 'fig7c.png'
set title 'Fig. 7c — Set A: wait, reliability, profitability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig7c.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    0.715098*x + 0.667169 with lines dt 2 lc 1 notitle, \
    'fig7c.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'EDF-BF', \
    -0.288508*x + 0.837224 with lines dt 2 lc 2 notitle, \
    'fig7c.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'Libra', \
    -1.331028*x + 1.000016 with lines dt 2 lc 3 notitle, \
    'fig7c.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'LibraRiskD', \
    -1.407436*x + 1.001383 with lines dt 2 lc 4 notitle, \
    'fig7c.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'FirstReward', \
    0.701495*x + 0.690075 with lines dt 2 lc 5 notitle
