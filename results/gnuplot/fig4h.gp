set terminal pngcairo size 640,480
set output 'fig4h.png'
set title 'Fig. 4h — Set B: wait, SLA, reliability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig4h.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    0.971214*x + 0.628753 with lines dt 2 lc 1 notitle, \
    'fig4h.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'SJF-BF', \
    0.592796*x + 0.739034 with lines dt 2 lc 2 notitle, \
    'fig4h.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'EDF-BF', \
    1.140200*x + 0.674155 with lines dt 2 lc 3 notitle, \
    'fig4h.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'Libra', \
    -0.096097*x + 0.896171 with lines dt 2 lc 4 notitle, \
    'fig4h.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'Libra+$', \
    0.659189*x + 0.776804 with lines dt 2 lc 5 notitle
