set terminal pngcairo size 640,480
set output 'fig6a.png'
set title 'Fig. 6a — Set A: wait'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig6a.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    0.606361*x + 0.203908 with lines dt 2 lc 1 notitle, \
    'fig6a.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'EDF-BF', \
    -0.392940*x + 0.593680 with lines dt 2 lc 2 notitle, \
    'fig6a.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'Libra', \
    'fig6a.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'LibraRiskD', \
    'fig6a.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'FirstReward', \
    -0.447214*x + 1.000000 with lines dt 2 lc 5 notitle
