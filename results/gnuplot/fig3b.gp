set terminal pngcairo size 640,480
set output 'fig3b.png'
set title 'Fig. 3b — Set B: wait'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig3b.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    1.549567*x + -0.014156 with lines dt 2 lc 1 notitle, \
    'fig3b.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'SJF-BF', \
    0.445352*x + 0.464876 with lines dt 2 lc 2 notitle, \
    'fig3b.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'EDF-BF', \
    0.990020*x + 0.291759 with lines dt 2 lc 3 notitle, \
    'fig3b.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'Libra', \
    'fig3b.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'Libra+$'
