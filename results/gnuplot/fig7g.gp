set terminal pngcairo size 640,480
set output 'fig7g.png'
set title 'Fig. 7g — Set A: wait, SLA, reliability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig7g.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    0.581851*x + 0.677509 with lines dt 2 lc 1 notitle, \
    'fig7g.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'EDF-BF', \
    -0.401115*x + 0.854965 with lines dt 2 lc 2 notitle, \
    'fig7g.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'Libra', \
    -0.889627*x + 0.992689 with lines dt 2 lc 3 notitle, \
    'fig7g.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'LibraRiskD', \
    -1.253007*x + 0.994551 with lines dt 2 lc 4 notitle, \
    'fig7g.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'FirstReward', \
    0.255874*x + 0.737709 with lines dt 2 lc 5 notitle
