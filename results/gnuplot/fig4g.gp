set terminal pngcairo size 640,480
set output 'fig4g.png'
set title 'Fig. 4g — Set A: wait, SLA, reliability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig4g.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    0.798272*x + 0.635009 with lines dt 2 lc 1 notitle, \
    'fig4g.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'SJF-BF', \
    0.231406*x + 0.872901 with lines dt 2 lc 2 notitle, \
    'fig4g.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'EDF-BF', \
    0.868560*x + 0.753754 with lines dt 2 lc 3 notitle, \
    'fig4g.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'Libra', \
    -1.527305*x + 0.994726 with lines dt 2 lc 4 notitle, \
    'fig4g.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'Libra+$', \
    -0.569038*x + 0.913426 with lines dt 2 lc 5 notitle
