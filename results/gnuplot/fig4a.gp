set terminal pngcairo size 640,480
set output 'fig4a.png'
set title 'Fig. 4a — Set A: SLA, reliability, profitability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig4a.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    -0.030759*x + 0.656228 with lines dt 2 lc 1 notitle, \
    'fig4a.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'SJF-BF', \
    -0.365809*x + 0.698167 with lines dt 2 lc 2 notitle, \
    'fig4a.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'EDF-BF', \
    -0.406717*x + 0.703610 with lines dt 2 lc 3 notitle, \
    'fig4a.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'Libra', \
    -0.726560*x + 0.717727 with lines dt 2 lc 4 notitle, \
    'fig4a.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'Libra+$', \
    -0.802753*x + 0.686105 with lines dt 2 lc 5 notitle
