set terminal pngcairo size 640,480
set output 'fig7e.png'
set title 'Fig. 7e — Set A: wait, SLA, profitability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig7e.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    0.705110*x + 0.609454 with lines dt 2 lc 1 notitle, \
    'fig7e.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'EDF-BF', \
    -0.320699*x + 0.828953 with lines dt 2 lc 2 notitle, \
    'fig7e.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'Libra', \
    -1.215491*x + 0.992725 with lines dt 2 lc 3 notitle, \
    'fig7e.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'LibraRiskD', \
    -1.267280*x + 0.993067 with lines dt 2 lc 4 notitle, \
    'fig7e.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'FirstReward', \
    0.354778*x + 0.429009 with lines dt 2 lc 5 notitle
