set terminal pngcairo size 640,480
set output 'fig4b.png'
set title 'Fig. 4b — Set B: SLA, reliability, profitability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig4b.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    -0.497103*x + 0.663901 with lines dt 2 lc 1 notitle, \
    'fig4b.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'SJF-BF', \
    -0.448751*x + 0.665398 with lines dt 2 lc 2 notitle, \
    'fig4b.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'EDF-BF', \
    -0.431516*x + 0.668624 with lines dt 2 lc 3 notitle, \
    'fig4b.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'Libra', \
    0.234962*x + 0.601239 with lines dt 2 lc 4 notitle, \
    'fig4b.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'Libra+$', \
    0.728583*x + 0.485150 with lines dt 2 lc 5 notitle
