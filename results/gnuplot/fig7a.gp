set terminal pngcairo size 640,480
set output 'fig7a.png'
set title 'Fig. 7a — Set A: SLA, reliability, profitability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig7a.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    -0.530863*x + 0.929816 with lines dt 2 lc 1 notitle, \
    'fig7a.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'EDF-BF', \
    -1.167351*x + 0.982984 with lines dt 2 lc 2 notitle, \
    'fig7a.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'Libra', \
    -1.263052*x + 0.993511 with lines dt 2 lc 3 notitle, \
    'fig7a.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'LibraRiskD', \
    -1.357739*x + 0.994650 with lines dt 2 lc 4 notitle, \
    'fig7a.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'FirstReward', \
    0.356455*x + 0.428985 with lines dt 2 lc 5 notitle
