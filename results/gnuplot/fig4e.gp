set terminal pngcairo size 640,480
set output 'fig4e.png'
set title 'Fig. 4e — Set A: wait, SLA, profitability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig4e.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    0.744596*x + 0.342625 with lines dt 2 lc 1 notitle, \
    'fig4e.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'SJF-BF', \
    0.139916*x + 0.585773 with lines dt 2 lc 2 notitle, \
    'fig4e.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'EDF-BF', \
    0.975362*x + 0.450047 with lines dt 2 lc 3 notitle, \
    'fig4e.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'Libra', \
    -0.625273*x + 0.715980 with lines dt 2 lc 4 notitle, \
    'fig4e.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'Libra+$', \
    -0.667525*x + 0.680879 with lines dt 2 lc 5 notitle
