set terminal pngcairo size 640,480
set output 'fig3h.png'
set title 'Fig. 3h — Set B: profitability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig3h.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    0.180052*x + 0.152492 with lines dt 2 lc 1 notitle, \
    'fig3h.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'SJF-BF', \
    0.099259*x + 0.155578 with lines dt 2 lc 2 notitle, \
    'fig3h.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'EDF-BF', \
    0.148933*x + 0.156719 with lines dt 2 lc 3 notitle, \
    'fig3h.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'Libra', \
    0.558757*x + 0.122181 with lines dt 2 lc 4 notitle, \
    'fig3h.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'Libra+$', \
    0.948566*x + 0.125627 with lines dt 2 lc 5 notitle
