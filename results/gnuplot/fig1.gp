set terminal pngcairo size 640,480
set output 'fig1.png'
set title 'Sample risk analysis plot of policies (Fig. 1)'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig1.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'A', \
    'fig1.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'B', \
    0.000000*x + 0.900000 with lines dt 2 lc 2 notitle, \
    'fig1.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'C', \
    -0.728323*x + 0.931225 with lines dt 2 lc 3 notitle, \
    'fig1.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'D', \
    -0.714286*x + 0.914286 with lines dt 2 lc 4 notitle, \
    'fig1.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'E', \
    -1.000000*x + 0.800000 with lines dt 2 lc 5 notitle, \
    'fig1.dat' index 5 using 1:2 with points pt 3 ps 1.4 title 'F', \
    1.250000*x + -0.175000 with lines dt 2 lc 6 notitle, \
    'fig1.dat' index 6 using 1:2 with points pt 1 ps 1.4 title 'G', \
    0.428571*x + 0.271429 with lines dt 2 lc 7 notitle, \
    'fig1.dat' index 7 using 1:2 with points pt 2 ps 1.4 title 'H', \
    0.714286*x + -0.014286 with lines dt 2 lc 8 notitle
