set terminal pngcairo size 640,480
set output 'fig6e.png'
set title 'Fig. 6e — Set A: reliability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig6e.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    'fig6e.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'EDF-BF', \
    'fig6e.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'Libra', \
    -2.000161*x + 1.000000 with lines dt 2 lc 3 notitle, \
    'fig6e.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'LibraRiskD', \
    -2.231344*x + 1.000000 with lines dt 2 lc 4 notitle, \
    'fig6e.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'FirstReward'
