set terminal pngcairo size 640,480
set output 'fig3a.png'
set title 'Fig. 3a — Set A: wait'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig3a.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    0.851781*x + 0.098129 with lines dt 2 lc 1 notitle, \
    'fig3a.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'SJF-BF', \
    0.534073*x + 0.667709 with lines dt 2 lc 2 notitle, \
    'fig3a.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'EDF-BF', \
    0.883587*x + 0.345867 with lines dt 2 lc 3 notitle, \
    'fig3a.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'Libra', \
    'fig3a.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'Libra+$'
