set terminal pngcairo size 640,480
set output 'fig7b.png'
set title 'Fig. 7b — Set B: SLA, reliability, profitability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig7b.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    0.447305*x + 0.813267 with lines dt 2 lc 1 notitle, \
    'fig7b.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'EDF-BF', \
    0.285513*x + 0.841917 with lines dt 2 lc 2 notitle, \
    'fig7b.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'Libra', \
    0.279404*x + 0.742476 with lines dt 2 lc 3 notitle, \
    'fig7b.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'LibraRiskD', \
    0.564245*x + 0.739204 with lines dt 2 lc 4 notitle, \
    'fig7b.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'FirstReward', \
    -0.370614*x + 0.427535 with lines dt 2 lc 5 notitle
