set terminal pngcairo size 640,480
set output 'fig6h.png'
set title 'Fig. 6h — Set B: profitability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig6h.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    0.734715*x + 0.570113 with lines dt 2 lc 1 notitle, \
    'fig6h.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'EDF-BF', \
    0.630618*x + 0.593482 with lines dt 2 lc 2 notitle, \
    'fig6h.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'Libra', \
    0.634439*x + 0.361736 with lines dt 2 lc 3 notitle, \
    'fig6h.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'LibraRiskD', \
    0.699828*x + 0.430982 with lines dt 2 lc 4 notitle, \
    'fig6h.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'FirstReward', \
    0.426137*x + 0.072380 with lines dt 2 lc 5 notitle
