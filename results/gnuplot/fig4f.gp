set terminal pngcairo size 640,480
set output 'fig4f.png'
set title 'Fig. 4f — Set B: wait, SLA, profitability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig4f.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    1.039811*x + 0.325509 with lines dt 2 lc 1 notitle, \
    'fig4f.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'SJF-BF', \
    0.852506*x + 0.422475 with lines dt 2 lc 2 notitle, \
    'fig4f.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'EDF-BF', \
    1.399225*x + 0.351656 with lines dt 2 lc 3 notitle, \
    'fig4f.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'Libra', \
    0.211419*x + 0.617451 with lines dt 2 lc 4 notitle, \
    'fig4f.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'Libra+$', \
    0.706085*x + 0.510205 with lines dt 2 lc 5 notitle
