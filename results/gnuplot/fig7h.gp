set terminal pngcairo size 640,480
set output 'fig7h.png'
set title 'Fig. 7h — Set B: wait, SLA, reliability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig7h.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    1.270800*x + 0.621674 with lines dt 2 lc 1 notitle, \
    'fig7h.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'EDF-BF', \
    0.988207*x + 0.751568 with lines dt 2 lc 2 notitle, \
    'fig7h.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'Libra', \
    -0.339083*x + 0.949295 with lines dt 2 lc 3 notitle, \
    'fig7h.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'LibraRiskD', \
    -0.080780*x + 0.936345 with lines dt 2 lc 4 notitle, \
    'fig7h.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'FirstReward', \
    -0.630896*x + 0.731952 with lines dt 2 lc 5 notitle
