set terminal pngcairo size 640,480
set output 'fig6g.png'
set title 'Fig. 6g — Set A: profitability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig6g.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    -1.145511*x + 0.948941 with lines dt 2 lc 1 notitle, \
    'fig6g.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'EDF-BF', \
    -1.262968*x + 0.971956 with lines dt 2 lc 2 notitle, \
    'fig6g.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'Libra', \
    -1.285288*x + 0.998681 with lines dt 2 lc 3 notitle, \
    'fig6g.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'LibraRiskD', \
    -1.317571*x + 1.001301 with lines dt 2 lc 4 notitle, \
    'fig6g.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'FirstReward', \
    0.709961*x + 0.070089 with lines dt 2 lc 5 notitle
