set terminal pngcairo size 640,480
set output 'fig6b.png'
set title 'Fig. 6b — Set B: wait'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig6b.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    1.498239*x + 0.008120 with lines dt 2 lc 1 notitle, \
    'fig6b.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'EDF-BF', \
    0.932261*x + 0.400732 with lines dt 2 lc 2 notitle, \
    'fig6b.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'Libra', \
    'fig6b.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'LibraRiskD', \
    'fig6b.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'FirstReward'
