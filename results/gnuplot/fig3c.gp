set terminal pngcairo size 640,480
set output 'fig3c.png'
set title 'Fig. 3c — Set A: SLA'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig3c.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    0.559751*x + 0.802821 with lines dt 2 lc 1 notitle, \
    'fig3c.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'SJF-BF', \
    -0.977300*x + 0.961409 with lines dt 2 lc 2 notitle, \
    'fig3c.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'EDF-BF', \
    -1.095760*x + 0.971133 with lines dt 2 lc 3 notitle, \
    'fig3c.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'Libra', \
    -1.345774*x + 0.978445 with lines dt 2 lc 4 notitle, \
    'fig3c.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'Libra+$', \
    -0.323869*x + 0.724713 with lines dt 2 lc 5 notitle
