set terminal pngcairo size 640,480
set output 'fig7d.png'
set title 'Fig. 7d — Set B: wait, reliability, profitability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig7d.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    1.460785*x + 0.504075 with lines dt 2 lc 1 notitle, \
    'fig7d.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'EDF-BF', \
    1.936603*x + 0.559733 with lines dt 2 lc 2 notitle, \
    'fig7d.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'Libra', \
    0.588174*x + 0.778199 with lines dt 2 lc 3 notitle, \
    'fig7d.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'LibraRiskD', \
    0.731968*x + 0.791409 with lines dt 2 lc 4 notitle, \
    'fig7d.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'FirstReward', \
    0.426137*x + 0.690793 with lines dt 2 lc 5 notitle
