set terminal pngcairo size 640,480
set output 'fig6c.png'
set title 'Fig. 6c — Set A: SLA'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig6c.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    0.055615*x + 0.848016 with lines dt 2 lc 1 notitle, \
    'fig6c.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'EDF-BF', \
    -0.446367*x + 0.970674 with lines dt 2 lc 2 notitle, \
    'fig6c.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'Libra', \
    -0.411956*x + 0.966066 with lines dt 2 lc 3 notitle, \
    'fig6c.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'LibraRiskD', \
    -0.451252*x + 0.963891 with lines dt 2 lc 4 notitle, \
    'fig6c.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'FirstReward', \
    0.257512*x + 0.213089 with lines dt 2 lc 5 notitle
