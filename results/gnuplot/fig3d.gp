set terminal pngcairo size 640,480
set output 'fig3d.png'
set title 'Fig. 3d — Set B: SLA'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig3d.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    -0.545519*x + 0.814814 with lines dt 2 lc 1 notitle, \
    'fig3d.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'SJF-BF', \
    -0.407502*x + 0.819040 with lines dt 2 lc 2 notitle, \
    'fig3d.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'EDF-BF', \
    -0.423423*x + 0.826807 with lines dt 2 lc 3 notitle, \
    'fig3d.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'Libra', \
    -0.156260*x + 0.734021 with lines dt 2 lc 4 notitle, \
    'fig3d.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'Libra+$', \
    0.579598*x + 0.408448 with lines dt 2 lc 5 notitle
