set terminal pngcairo size 640,480
set output 'fig3e.png'
set title 'Fig. 3e — Set A: reliability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig3e.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    'fig3e.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'SJF-BF', \
    'fig3e.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'EDF-BF', \
    'fig3e.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'Libra', \
    -1.986850*x + 1.000000 with lines dt 2 lc 4 notitle, \
    'fig3e.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'Libra+$', \
    -1.423954*x + 1.000000 with lines dt 2 lc 5 notitle
