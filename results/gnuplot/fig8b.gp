set terminal pngcairo size 640,480
set output 'fig8b.png'
set title 'Fig. 8b — Set B: all four objectives'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig8b.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    1.228322*x + 0.599169 with lines dt 2 lc 1 notitle, \
    'fig8b.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'EDF-BF', \
    1.550634*x + 0.653865 with lines dt 2 lc 2 notitle, \
    'fig8b.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'Libra', \
    0.279404*x + 0.806857 with lines dt 2 lc 3 notitle, \
    'fig8b.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'LibraRiskD', \
    0.564245*x + 0.804403 with lines dt 2 lc 4 notitle, \
    'fig8b.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'FirstReward', \
    -0.370614*x + 0.570651 with lines dt 2 lc 5 notitle
