set terminal pngcairo size 640,480
set output 'fig4d.png'
set title 'Fig. 4d — Set B: wait, reliability, profitability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig4d.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    1.547343*x + 0.361825 with lines dt 2 lc 1 notitle, \
    'fig4d.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'SJF-BF', \
    0.851272*x + 0.499458 with lines dt 2 lc 2 notitle, \
    'fig4d.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'EDF-BF', \
    1.491604*x + 0.426909 with lines dt 2 lc 3 notitle, \
    'fig4d.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'Libra', \
    0.568813*x + 0.690448 with lines dt 2 lc 4 notitle, \
    'fig4d.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'Libra+$', \
    0.793371*x + 0.685577 with lines dt 2 lc 5 notitle
