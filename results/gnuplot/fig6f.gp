set terminal pngcairo size 640,480
set output 'fig6f.png'
set title 'Fig. 6f — Set B: reliability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig6f.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    'fig6f.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'EDF-BF', \
    'fig6f.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'Libra', \
    -0.243504*x + 0.971865 with lines dt 2 lc 3 notitle, \
    'fig6f.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'LibraRiskD', \
    0.851018*x + 0.946842 with lines dt 2 lc 4 notitle, \
    'fig6f.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'FirstReward'
