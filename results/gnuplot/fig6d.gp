set terminal pngcairo size 640,480
set output 'fig6d.png'
set title 'Fig. 6d — Set B: SLA'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig6d.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    -0.245789*x + 0.863980 with lines dt 2 lc 1 notitle, \
    'fig6d.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'EDF-BF', \
    -0.592451*x + 0.928046 with lines dt 2 lc 2 notitle, \
    'fig6d.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'Libra', \
    -0.302288*x + 0.872939 with lines dt 2 lc 3 notitle, \
    'fig6d.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'LibraRiskD', \
    -0.210650*x + 0.857318 with lines dt 2 lc 4 notitle, \
    'fig6d.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'FirstReward', \
    -0.630896*x + 0.195856 with lines dt 2 lc 5 notitle
