set terminal pngcairo size 640,480
set output 'fig4c.png'
set title 'Fig. 4c — Set A: wait, reliability, profitability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig4c.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    0.764143*x + 0.408431 with lines dt 2 lc 1 notitle, \
    'fig4c.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'SJF-BF', \
    0.342430*x + 0.601559 with lines dt 2 lc 2 notitle, \
    'fig4c.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'EDF-BF', \
    1.213036*x + 0.463212 with lines dt 2 lc 3 notitle, \
    'fig4c.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'Libra', \
    -0.147403*x + 0.724521 with lines dt 2 lc 4 notitle, \
    'fig4c.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'Libra+$', \
    -0.695222*x + 0.764074 with lines dt 2 lc 5 notitle
