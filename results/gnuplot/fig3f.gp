set terminal pngcairo size 640,480
set output 'fig3f.png'
set title 'Fig. 3f — Set B: reliability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig3f.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    'fig3f.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'SJF-BF', \
    'fig3f.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'EDF-BF', \
    'fig3f.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'Libra', \
    1.051175*x + 0.943781 with lines dt 2 lc 4 notitle, \
    'fig3f.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'Libra+$', \
    0.910669*x + 0.923721 with lines dt 2 lc 5 notitle
