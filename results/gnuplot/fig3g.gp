set terminal pngcairo size 640,480
set output 'fig3g.png'
set title 'Fig. 3g — Set A: profitability'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig3g.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    -0.022080*x + 0.142403 with lines dt 2 lc 1 notitle, \
    'fig3g.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'SJF-BF', \
    -0.026446*x + 0.139756 with lines dt 2 lc 2 notitle, \
    'fig3g.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'EDF-BF', \
    -0.038997*x + 0.146258 with lines dt 2 lc 3 notitle, \
    'fig3g.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'Libra', \
    -0.110435*x + 0.175626 with lines dt 2 lc 4 notitle, \
    'fig3g.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'Libra+$', \
    -0.569273*x + 0.287278 with lines dt 2 lc 5 notitle
