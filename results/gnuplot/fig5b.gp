set terminal pngcairo size 640,480
set output 'fig5b.png'
set title 'Fig. 5b — Set B: all four objectives'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig5b.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    1.039811*x + 0.494132 with lines dt 2 lc 1 notitle, \
    'fig5b.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'SJF-BF', \
    0.852506*x + 0.566856 with lines dt 2 lc 2 notitle, \
    'fig5b.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'EDF-BF', \
    1.399225*x + 0.513742 with lines dt 2 lc 3 notitle, \
    'fig5b.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'Libra', \
    0.234962*x + 0.700930 with lines dt 2 lc 4 notitle, \
    'fig5b.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'Libra+$', \
    0.728583*x + 0.613862 with lines dt 2 lc 5 notitle
