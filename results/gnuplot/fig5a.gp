set terminal pngcairo size 640,480
set output 'fig5a.png'
set title 'Fig. 5a — Set A: all four objectives'
set xlabel 'Volatility (Standard Deviation)'
set ylabel 'Performance'
set xrange [0:0.5]
set yrange [0:1]
set key outside right top
set grid
plot \
    'fig5a.dat' index 0 using 1:2 with points pt 7 ps 1.4 title 'FCFS-BF', \
    0.744596*x + 0.506969 with lines dt 2 lc 1 notitle, \
    'fig5a.dat' index 1 using 1:2 with points pt 5 ps 1.4 title 'SJF-BF', \
    0.139916*x + 0.689329 with lines dt 2 lc 2 notitle, \
    'fig5a.dat' index 2 using 1:2 with points pt 9 ps 1.4 title 'EDF-BF', \
    0.975362*x + 0.587535 with lines dt 2 lc 3 notitle, \
    'fig5a.dat' index 3 using 1:2 with points pt 11 ps 1.4 title 'Libra', \
    -0.726560*x + 0.788295 with lines dt 2 lc 4 notitle, \
    'fig5a.dat' index 4 using 1:2 with points pt 13 ps 1.4 title 'Libra+$', \
    -0.802753*x + 0.764579 with lines dt 2 lc 5 notitle
