"""Repo-root pytest configuration.

Tier-1 (`PYTHONPATH=src python -m pytest -x -q`) collects only ``tests/``
(``testpaths`` in pyproject.toml).  The paper-exhibit benchmarks under
``benchmarks/`` are opt-in so CI stays fast:

- ``pytest benchmarks --run-bench`` — run them explicitly, or
- ``pytest tests benchmarks -m bench`` — select them by marker.

Collected benchmark items are auto-tagged with the ``bench`` marker and
skipped unless one of the opt-ins is present.  See docs/benchmarking.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

BENCH_DIR = Path(__file__).resolve().parent / "benchmarks"


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--run-bench",
        action="store_true",
        default=False,
        help="run the paper-exhibit benchmarks under benchmarks/",
    )


@pytest.hookimpl(tryfirst=True)
def pytest_collection_modifyitems(config: pytest.Config, items: list) -> None:
    opted_in = config.getoption("--run-bench") or "bench" in (
        config.getoption("-m") or ""
    )
    skip_bench = pytest.mark.skip(
        reason="benchmarks are opt-in: pass --run-bench or -m bench"
    )
    for item in items:
        try:
            in_bench_dir = Path(item.fspath).resolve().is_relative_to(BENCH_DIR)
        except (OSError, ValueError):  # pragma: no cover - exotic collectors
            in_bench_dir = False
        if in_bench_dir:
            item.add_marker(pytest.mark.bench)
            if not opted_in:
                item.add_marker(skip_bench)
