#!/usr/bin/env python3
"""Extending the framework: write and risk-analyse your own policy.

The paper's evaluation method is policy-agnostic — this example adds a new
admission-controlled policy ("GreedyValue": value-density ordering with
deadline-feasibility admission, a natural cousin of SJF-BF and FirstReward)
and puts it through the same integrated risk analysis as the built-ins,
which is exactly the workflow a provider would use to evaluate a candidate
policy before deployment.

Run:  python examples/custom_policy.py
"""

from repro.core.objectives import OBJECTIVES, Objective
from repro.core.normalize import normalize_runs
from repro.core.integrated import integrated_risk
from repro.core.separate import separate_risk
from repro.economy.models import make_model
from repro.policies import make_policy
from repro.policies.backfill import BackfillPolicy
from repro.service.provider import CommercialComputingService
from repro.workload.estimates import apply_inaccuracy
from repro.workload.job import Job
from repro.workload.qos import QoSSpec, assign_qos
from repro.workload.synthetic import SDSC_SP2, generate_trace


class GreedyValueBackfill(BackfillPolicy):
    """EASY backfilling ordered by value density (budget per CPU-second).

    Reuses the whole backfilling/admission machinery — a new policy is just
    a priority function.
    """

    name = "GreedyValue-BF"

    def priority_key(self, job: Job):
        density = job.budget / (job.estimate * job.procs)
        return (-density, job.submit_time, job.job_id)


def build_workload(pct_inaccuracy: float):
    jobs = generate_trace(SDSC_SP2.scaled(250), rng=11)
    assign_qos(jobs, QoSSpec(), rng=11)
    apply_inaccuracy(jobs, pct_inaccuracy)
    return jobs


def run(policy_factory):
    """Integrated risk over the inaccuracy scenario (6 values)."""
    per_value = []
    for pct in (0.0, 20.0, 40.0, 60.0, 80.0, 100.0):
        service = CommercialComputingService(
            policy_factory(), make_model("bid"), total_procs=128
        )
        per_value.append(service.run(build_workload(pct)).objectives())
    return per_value


def main() -> None:
    contenders = {
        "GreedyValue-BF": GreedyValueBackfill,
        "FCFS-BF": lambda: make_policy("FCFS-BF"),
        "LibraRiskD": lambda: make_policy("LibraRiskD"),
    }
    runs = [run(factory) for factory in contenders.values()]
    normalized = normalize_runs(runs)

    print("integrated risk analysis (all four objectives, equal weights)")
    print(f"{'policy':15s} {'performance':>12s} {'volatility':>11s}")
    for i, name in enumerate(contenders):
        separate = {
            obj: separate_risk(normalized[obj][i]) for obj in Objective
        }
        combined = integrated_risk({o: separate[o] for o in OBJECTIVES})
        print(f"{name:15s} {combined.performance:12.3f} {combined.volatility:11.3f}")


if __name__ == "__main__":
    main()
