#!/usr/bin/env python3
"""Market competition: why the user-centric objectives matter (paper §3).

The paper motivates its three user-centric objectives with a free-market
argument: users can switch providers at will, so a provider that rejects or
disappoints them "is likely to result in dwindling number of users, loss of
reputation and revenue".  This example simulates exactly that market —
three competing providers, a shared job stream, users with satisfaction
memory — and shows market share draining from the hostile provider over
simulated time.

Run:  python examples/market_competition.py
"""

from dataclasses import replace

from repro.market.marketplace import Marketplace, ProviderSpec
from repro.market.user import SatisfactionParams
from repro.workload.qos import QoSSpec, assign_qos
from repro.workload.synthetic import SDSC_SP2, generate_trace


def build_workload(n_jobs=400, seed=21):
    model = replace(SDSC_SP2, n_jobs=n_jobs, max_procs=64)
    jobs = generate_trace(model, rng=seed)
    assign_qos(jobs, QoSSpec(pct_high_urgency=20.0), rng=seed)
    for job in jobs:
        job.submit_time *= 0.25  # heavy demand: competition matters
    return jobs


def main() -> None:
    market = Marketplace(
        [
            ProviderSpec("reliable", "FCFS-BF", total_procs=64),
            ProviderSpec("responsive", "LibraRiskD", total_procs=64),
            # A provider so risk-averse it rejects every request:
            ProviderSpec("hostile", "FirstReward", total_procs=64,
                         policy_kwargs={"slack_threshold": 1e12}),
        ],
        n_users=16,
        params=SatisfactionParams(temperature=0.25),
        seed=21,
        share_window=100_000.0,
    )
    market.run(build_workload())

    print("market share per sampling window (submissions):")
    names = list(market.providers)
    header = "  window_start  " + "  ".join(f"{n:>11s}" for n in names)
    print(header)
    for sample in market.share_samples:
        shares = "  ".join(f"{sample.share(n):10.1%}" for n in names)
        print(f"  {sample.time:12.0f}  {shares}")

    print("\nfinal standings:")
    for row in market.summary_rows():
        print(
            f"  {row['provider']:11s} policy={row['policy']:12s} "
            f"share={row['overall_share']:6.1%} (final {row['final_share']:6.1%})  "
            f"fulfilled={row['fulfilled']:4d}  violated={row['violated']:3d}  "
            f"rejected={row['rejected']:4d}  loyal users={row['loyal_users']:2d}  "
            f"revenue={row['revenue']:12.0f}"
        )

    hostile = next(r for r in market.summary_rows() if r["provider"] == "hostile")
    print(
        f"\nthe hostile provider kept {hostile['final_share']:.1%} of late-market "
        f"traffic and {hostile['loyal_users']} loyal users — the paper's "
        "out-of-business trajectory."
    )


if __name__ == "__main__":
    main()
