#!/usr/bin/env python3
"""Data staging: how the network reshapes the user-centric objectives.

The paper's platform (GridSim) models differentiated network service but
the paper runs with instantaneous submission.  This example puts a shared
ingress link in front of the provider: every job stages its input data
before the policy examines it, so transfer time consumes deadline slack and
inflates the wait objective.  Sweeping the link bandwidth shows when the
network — not the scheduler — becomes the SLA bottleneck.

Run:  python examples/data_staging_study.py
"""

from repro.economy.models import make_model
from repro.network.link import SharedLink
from repro.network.staging import DataStagingFrontEnd, assign_input_sizes
from repro.policies import make_policy
from repro.service.provider import CommercialComputingService
from repro.workload.estimates import apply_inaccuracy
from repro.workload.qos import QoSSpec, assign_qos
from repro.workload.synthetic import SDSC_SP2, generate_trace


def build_jobs(seed=31):
    jobs = generate_trace(SDSC_SP2.scaled(250), rng=seed)
    assign_qos(jobs, QoSSpec(pct_high_urgency=20.0), rng=seed)
    apply_inaccuracy(jobs, 0.0)
    assign_input_sizes(jobs, rng=seed, mean_mb_per_proc=200.0)
    return jobs


def run_with_bandwidth(bandwidth_mbps):
    jobs = build_jobs()
    service = CommercialComputingService(
        make_policy("EDF-BF"), make_model("bid"), total_procs=128
    )
    link = SharedLink(service.sim, bandwidth_mbps=bandwidth_mbps)
    front = DataStagingFrontEnd(service, link)
    result = front.run(jobs)
    return result.objectives(), front.mean_staging_delay()


def main() -> None:
    print("EDF-BF behind a shared ingress link (250 jobs, ~200 MB/CPU inputs)\n")
    header = (f"{'bandwidth MB/s':>14s} {'mean staging s':>15s} {'wait s':>10s} "
              f"{'SLA %':>7s} {'reliability %':>14s} {'profit %':>9s}")
    print(header)
    print("-" * len(header))
    for bandwidth in (10_000.0, 1_000.0, 100.0, 25.0, 10.0):
        objs, staging = run_with_bandwidth(bandwidth)
        print(f"{bandwidth:14.0f} {staging:15.1f} {objs.wait:10.1f} "
              f"{objs.sla:7.1f} {objs.reliability:14.2f} {objs.profitability:9.2f}")
    print("\nas bandwidth shrinks, staging eats the deadline slack: the wait "
          "objective grows and the admission control starts rejecting jobs "
          "whose windows the transfer already consumed — an SLA loss no "
          "scheduling policy can recover.")


if __name__ == "__main__":
    main()
