#!/usr/bin/env python3
"""Correlated fault domains: what correlation alone costs in risk.

Independent per-node MTBF processes understate real outage risk — racks
share power feeds and switches, so one tripped breaker downs a whole
correlated batch of nodes at once.  This example holds every marginal
failure law fixed and sweeps only the *cascade probability* (how likely
a node failure is to drag its rack-mates down), so the table isolates
what correlation alone does to each policy's integrated risk.

Run:  python examples/correlated_faults_study.py
"""

from repro.experiments.faultsweep import run_correlated_sweep
from repro.experiments.scenarios import ExperimentConfig


def main() -> None:
    base = ExperimentConfig(n_jobs=300, total_procs=64)
    result = run_correlated_sweep(
        ["FCFS-BF", "EDF-BF", "Libra"],
        "bid",
        base,
        cascade_probs=(0.0, 0.25, 0.5, 1.0),
        domain_size=8,
        domain_mtbf=2 * 86_400.0,
        domain_mttr=3_600.0,
        mtbf=8 * 86_400.0,
    )
    print("64 procs in racks of 8; rack outages every ~2 days, node MTBF 8 days")
    print("marginal failure laws held fixed — only the correlation is swept\n")
    print(result.table())
    print("\nthe same downtime budget hurts more when it arrives in "
          "correlated batches: wide jobs lose all their nodes at once, "
          "recovery work bunches up behind the repaired rack, and the "
          "deadline misses land in the integrated risk metric exactly "
          "like policy-caused ones.")


if __name__ == "__main__":
    main()
