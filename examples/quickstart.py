#!/usr/bin/env python3
"""Quickstart: run one commercial computing service and risk-analyse it.

This walks the full public API in five steps:

1. synthesise an SDSC-SP2-like workload with SLA parameters,
2. run two resource-management policies on a simulated 128-node cluster,
3. measure the paper's four objectives (Eqs. 1-4),
4. reduce a scenario sweep to separate risk analyses (Eqs. 5-6),
5. combine objectives into an integrated risk analysis (Eqs. 7-8).

Run:  python examples/quickstart.py
"""

from repro.core.integrated import integrated_risk
from repro.core.normalize import normalize_runs
from repro.core.objectives import Objective
from repro.core.separate import separate_risk
from repro.economy.models import make_model
from repro.policies import make_policy
from repro.service.provider import CommercialComputingService
from repro.workload.estimates import apply_inaccuracy
from repro.workload.qos import QoSSpec, assign_qos
from repro.workload.synthetic import SDSC_SP2, generate_trace


def build_workload(seed: int, inaccuracy_pct: float):
    """300 jobs with the paper's QoS synthesis (20% high urgency)."""
    jobs = generate_trace(SDSC_SP2.scaled(300), rng=seed)
    assign_qos(jobs, QoSSpec(pct_high_urgency=20.0), rng=seed)
    apply_inaccuracy(jobs, inaccuracy_pct)
    return jobs


def main() -> None:
    policies = ("FCFS-BF", "Libra")

    # -- steps 1-3: simulate and measure ------------------------------------
    print("=== objectives per policy (bid-based model, trace estimates) ===")
    for name in policies:
        jobs = build_workload(seed=42, inaccuracy_pct=100.0)
        service = CommercialComputingService(
            make_policy(name), make_model("bid"), total_procs=128
        )
        objs = service.run(jobs).objectives()
        print(
            f"{name:8s}  wait={objs.wait:8.1f}s  SLA={objs.sla:5.1f}%  "
            f"reliability={objs.reliability:6.2f}%  profitability={objs.profitability:6.2f}%"
        )

    # -- step 4: a mini scenario (varying inaccuracy) ------------------------
    print("\n=== separate risk analysis over the inaccuracy scenario ===")
    levels = (0.0, 20.0, 40.0, 60.0, 80.0, 100.0)
    runs = []
    for name in policies:
        per_policy = []
        for pct in levels:
            jobs = build_workload(seed=42, inaccuracy_pct=pct)
            service = CommercialComputingService(
                make_policy(name), make_model("bid"), total_procs=128
            )
            per_policy.append(service.run(jobs).objectives())
        runs.append(per_policy)

    normalized = normalize_runs(runs)
    separate = {}
    for i, name in enumerate(policies):
        separate[name] = {
            obj: separate_risk(normalized[obj][i]) for obj in Objective
        }
        for obj in Objective:
            risk = separate[name][obj]
            print(
                f"{name:8s} {obj.value:13s}  performance={risk.performance:.3f}  "
                f"volatility={risk.volatility:.3f}"
            )

    # -- step 5: integrated risk analysis of all four objectives -------------
    print("\n=== integrated risk analysis (equal weights, all objectives) ===")
    for name in policies:
        combined = integrated_risk(separate[name])
        print(
            f"{name:8s}  performance={combined.performance:.3f}  "
            f"volatility={combined.volatility:.3f}"
        )


if __name__ == "__main__":
    main()
