#!/usr/bin/env python3
"""Operations dashboard: monitoring a live provider (paper §3.3).

The paper assumes the provider "has monitoring mechanisms to check the
progress of existing job executions".  This example attaches a
:class:`~repro.service.monitoring.ServiceMonitor` to a provider under heavy
load and renders the operational picture: utilisation and queue-length
timelines, acceptance ratio, and cumulative utility.

Run:  python examples/operations_dashboard.py
"""

from repro.economy.models import make_model
from repro.policies import make_policy
from repro.service.monitoring import ServiceMonitor
from repro.service.provider import CommercialComputingService
from repro.workload.estimates import apply_inaccuracy
from repro.workload.qos import QoSSpec, assign_qos
from repro.workload.synthetic import SDSC_SP2, generate_trace

SPARK = " ▁▂▃▄▅▆▇█"


def sparkline(values, width=64) -> str:
    """Compress a series into a fixed-width unicode sparkline."""
    if len(values) == 0:
        return ""
    step = max(len(values) // width, 1)
    buckets = [max(values[i:i + step]) for i in range(0, len(values), step)]
    top = max(max(buckets), 1e-9)
    return "".join(SPARK[min(int(v / top * (len(SPARK) - 1)), len(SPARK) - 1)]
                   for v in buckets)


def main() -> None:
    jobs = generate_trace(SDSC_SP2.scaled(400), rng=13)
    assign_qos(jobs, QoSSpec(pct_high_urgency=20.0), rng=13)
    apply_inaccuracy(jobs, 100.0)
    for job in jobs:
        job.submit_time *= 0.25  # heavy load

    for policy_name in ("FCFS-BF", "LibraRiskD"):
        service = CommercialComputingService(
            make_policy(policy_name), make_model("bid"), total_procs=128
        )
        monitor = ServiceMonitor(service, cadence=20_000.0)
        result = service.run([j.clone() for j in jobs])

        print(f"\n=== {policy_name} ===")
        utils = monitor.series.values("utilization")
        queue = monitor.series.values("queue_length")
        print(f"utilization  |{sparkline(utils)}|  "
              f"mean={monitor.series.time_weighted_mean('utilization'):.1%} "
              f"peak={monitor.series.peak('utilization'):.1%}")
        print(f"queue length |{sparkline(queue)}|  "
              f"peak={int(monitor.series.peak('queue_length'))}")
        report = monitor.report()
        objs = result.objectives()
        print(f"acceptance ratio {report['final_acceptance_ratio']:.1%}  "
              f"fulfilled {sum(o.sla_fulfilled for o in result.outcomes)}"
              f"/{len(result.outcomes)}  utility {report['final_utility']:,.0f}")
        print(f"objectives: wait={objs.wait:.0f}s SLA={objs.sla:.1f}% "
              f"reliability={objs.reliability:.1f}% profitability={objs.profitability:.1f}%")


if __name__ == "__main__":
    main()
