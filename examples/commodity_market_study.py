#!/usr/bin/env python3
"""Commodity market study: which policy should a provider deploy?

Reproduces the paper's §6.1 decision process at example scale: run the five
commodity-market policies over two Table VI scenarios for both estimate
sets, draw the four-objective integrated risk plot, and rank the policies
the way Tables III/IV do.

The paper's finding: Libra+$ is the best commodity policy when estimates
are accurate, but queue-based backfillers (SJF-BF) overtake the Libra
family once the trace's real — highly over-estimated — runtimes are used.

Run:  python examples/commodity_market_study.py
"""

from repro.core.objectives import OBJECTIVES
from repro.core.ranking import rank_policies
from repro.experiments.runner import RunCache, run_grid
from repro.experiments.scenarios import ExperimentConfig, scenario_by_name
from repro.experiments.report import summarize_plot
from repro.policies import COMMODITY_POLICIES

SCENARIOS = [scenario_by_name("workload"), scenario_by_name("job mix"),
             scenario_by_name("deadline low mean")]


def main() -> None:
    base = ExperimentConfig(n_jobs=150, total_procs=128)
    cache = RunCache()

    for set_name in ("A", "B"):
        label = "accurate estimates" if set_name == "A" else "trace estimates"
        print(f"\n{'=' * 72}\nSet {set_name} ({label})\n{'=' * 72}")
        grid = run_grid(COMMODITY_POLICIES, "commodity", base, set_name,
                        SCENARIOS, cache)
        plot = grid.integrated_plot(OBJECTIVES)
        print(summarize_plot(plot, include_ascii=True))

        best = rank_policies(plot, by="performance")[0]
        print(
            f"\n-> deploy {best.policy}: max performance "
            f"{best.max_performance:.3f} at min volatility {best.min_volatility:.3f}"
        )

    print(f"\nsimulations run: {cache.misses} (cache reused {cache.hits})")


if __name__ == "__main__":
    main()
