#!/usr/bin/env python3
"""Bid-based market study: penalties, risk aversion, and estimate error.

Reproduces the paper's §6.2 narrative at example scale:

- the unbounded linear penalty (Fig. 2) makes over-acceptance dangerous;
- FirstReward's slack threshold trades SLA acceptance for penalty safety;
- LibraRiskD's zero-risk node filter rescues deadline reliability when the
  users' runtime estimates are as inaccurate as real traces.

Run:  python examples/bid_based_study.py
"""

from repro.economy.models import make_model
from repro.economy.penalty import breakeven_finish_time, linear_utility
from repro.policies import BID_POLICIES, make_policy
from repro.policies.first_reward import FirstReward
from repro.service.provider import CommercialComputingService
from repro.workload.estimates import apply_inaccuracy
from repro.workload.job import Job
from repro.workload.qos import QoSSpec, assign_qos
from repro.workload.synthetic import SDSC_SP2, generate_trace


def penalty_anatomy() -> None:
    print("=== the unbounded linear penalty (Fig. 2) ===")
    job = Job(job_id=0, submit_time=0.0, runtime=3600.0, estimate=3600.0,
              procs=8, deadline=7200.0, budget=500.0, penalty_rate=0.25)
    for finish in (3600.0, 7200.0, 8200.0, 9200.0, breakeven_finish_time(job), 12000.0):
        u = linear_utility(job, finish)
        note = "  <- break-even" if abs(u) < 1e-9 else ""
        print(f"  finish t={finish:8.0f}s  utility={u:8.2f}{note}")


def build_workload(inaccuracy_pct: float):
    jobs = generate_trace(SDSC_SP2.scaled(400), rng=7)
    assign_qos(jobs, QoSSpec(pct_high_urgency=20.0), rng=7)
    apply_inaccuracy(jobs, inaccuracy_pct)
    return jobs


def run_policy(policy, inaccuracy_pct: float):
    service = CommercialComputingService(policy, make_model("bid"), total_procs=128)
    return service.run(build_workload(inaccuracy_pct)).objectives()


def policy_comparison() -> None:
    print("\n=== bid-based policies, accurate vs trace estimates ===")
    header = f"{'policy':12s} {'set':3s} {'wait(s)':>9s} {'SLA%':>6s} {'rel%':>7s} {'profit%':>8s}"
    print(header)
    print("-" * len(header))
    for name in BID_POLICIES:
        for set_name, pct in (("A", 0.0), ("B", 100.0)):
            objs = run_policy(make_policy(name), pct)
            print(
                f"{name:12s} {set_name:3s} {objs.wait:9.1f} {objs.sla:6.1f} "
                f"{objs.reliability:7.2f} {objs.profitability:8.2f}"
            )


def risk_aversion_sweep() -> None:
    print("\n=== FirstReward: the slack threshold dial ===")
    for threshold in (0.0, 10.0, 25.0, 50.0, 100.0):
        objs = run_policy(FirstReward(slack_threshold=threshold), 100.0)
        print(
            f"  threshold={threshold:6.1f}  SLA={objs.sla:5.1f}%  "
            f"profitability={objs.profitability:6.2f}%"
        )


def main() -> None:
    penalty_anatomy()
    policy_comparison()
    risk_aversion_sweep()


if __name__ == "__main__":
    main()
