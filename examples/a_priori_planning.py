#!/usr/bin/env python3
"""A priori risk analysis: from measured results to a deployment decision.

The paper's closing promise (§7): the a posteriori evaluation results "can
later be used to generate an a priori risk analysis of policies by
identifying possible risks for future utility computing situations."  This
example runs a measured grid, builds per-policy risk profiles, prints the
enterprise-style risk register, and issues deployment recommendations for
three different provider temperaments.

Run:  python examples/a_priori_planning.py
"""

from repro.core.apriori import recommend_policy, risk_register
from repro.core.objectives import Objective
from repro.experiments.runner import RunCache, run_grid
from repro.experiments.scenarios import ExperimentConfig, scenario_by_name
from repro.policies import BID_POLICIES

SCENARIOS = [scenario_by_name(n) for n in ("workload", "inaccuracy", "job mix")]


def main() -> None:
    base = ExperimentConfig(n_jobs=150, total_procs=128)
    print("measuring (a posteriori): bid-based market, Set B, "
          f"{len(SCENARIOS)} scenarios x 6 values x {len(BID_POLICIES)} policies ...")
    grid = run_grid(BID_POLICIES, "bid", base, "B", SCENARIOS, RunCache())

    # -- risk profiles ---------------------------------------------------------
    print("\n=== per-policy risk profiles ===")
    for name, profile in grid.risk_profiles().items():
        overall = profile.overall()
        driver = max(
            (profile.highest_volatility[o] for o in Objective),
            key=lambda d: d.volatility,
        )
        print(f"{name:12s} performance={overall.performance:.3f} "
              f"volatility={overall.volatility:.3f}  "
              f"worst driver: {driver.objective.value} under varying "
              f"{driver.scenario} ({driver.severity.name})")

    # -- risk register -----------------------------------------------------------
    print("\n=== risk register (moderate and above) ===")
    for entry in risk_register(grid.separate)[:8]:
        print(f"  [{entry.severity.name:8s}] {entry.note}")

    # -- recommendations per temperament ------------------------------------------
    print("\n=== a priori deployment recommendations ===")
    temperaments = {
        "balanced (tolerance 0.20)": dict(volatility_tolerance=0.20),
        "risk-averse (tolerance 0.05)": dict(volatility_tolerance=0.05),
        "profit-first (profitability-weighted)": dict(
            volatility_tolerance=1.0,
            weights={
                Objective.WAIT: 0.1, Objective.SLA: 0.1,
                Objective.RELIABILITY: 0.1, Objective.PROFITABILITY: 0.7,
            },
        ),
    }
    for label, kwargs in temperaments.items():
        rec = recommend_policy(grid.separate, **kwargs)
        print(f"\n{label}:")
        print(f"  deploy {rec.policy}")
        print(f"  {rec.rationale}")
        if rec.alternatives:
            print(f"  alternatives: {', '.join(rec.alternatives)}")


if __name__ == "__main__":
    main()
