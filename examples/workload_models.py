#!/usr/bin/env python3
"""Workload models: how the input model shapes the objectives.

The paper drives everything from one SDSC SP2 subset.  This repository
ships three workload substrates — the trace-calibrated lognormal generator,
the Lublin–Feitelson statistical model, and the Tsafrir modal-estimate
model — and this example runs the same policy across them to show which
conclusions are workload-robust.

Run:  python examples/workload_models.py
"""

from repro.economy.models import make_model
from repro.policies import make_policy
from repro.service.provider import CommercialComputingService
from repro.workload.estimates import apply_inaccuracy, inaccuracy_statistics
from repro.workload.lublin import LublinModel, generate_lublin_trace
from repro.workload.qos import QoSSpec, assign_qos
from repro.workload.synthetic import SDSC_SP2, generate_trace, trace_statistics
from repro.workload.tsafrir import apply_tsafrir_estimates


def workloads(n=300, seed=17):
    sdsc = generate_trace(SDSC_SP2.scaled(n), rng=seed)

    lublin = generate_lublin_trace(LublinModel(n_jobs=n, max_procs=128), rng=seed)

    modal = generate_trace(SDSC_SP2.scaled(n), rng=seed)
    apply_tsafrir_estimates(modal, rng=seed)

    return {
        "SDSC-SP2 lognormal": sdsc,
        "Lublin-Feitelson": lublin,
        "SDSC + Tsafrir estimates": modal,
    }


def main() -> None:
    print("=== workload statistics ===")
    sets = workloads()
    for name, jobs in sets.items():
        stats = trace_statistics(jobs)
        print(f"{name:26s} mean_runtime={stats['mean_runtime']:8.0f}s  "
              f"mean_procs={stats['mean_procs']:5.1f}  "
              f"mean_interarrival={stats['mean_interarrival']:7.0f}s")

    print("\n=== LibraRiskD under each workload (bid model, trace estimates) ===")
    for name, jobs in sets.items():
        assign_qos(jobs, QoSSpec(pct_high_urgency=20.0), rng=17)
        apply_inaccuracy(jobs, 100.0)
        est = inaccuracy_statistics(jobs)
        service = CommercialComputingService(
            make_policy("LibraRiskD"), make_model("bid"), total_procs=128
        )
        objs = service.run(jobs).objectives()
        print(f"{name:26s} over-est={est['over_fraction']:5.1%}  "
              f"SLA={objs.sla:5.1f}%  reliability={objs.reliability:6.2f}%  "
              f"profitability={objs.profitability:6.2f}%")

    print("\nthe wait objective stays ideal and reliability stays high across "
          "all three workload models — the paper's LibraRiskD conclusion is "
          "not an artefact of one generator.")


if __name__ == "__main__":
    main()
