"""The §3 market claim at population scale: risk knobs vs survival.

``examples/market_competition.py`` shows sixteen users abandoning a
hostile provider.  This example runs the same dynamic with a *million*
users on the vectorized cohort backend, then sweeps the risky provider's
MTBF to quantify the paper's motivation: a risky operating point costs
market share, loyal users, and (through SLA penalties) revenue.

Run from the repository root::

    PYTHONPATH=src python examples/population_market.py
"""

import time

from repro.experiments.marketsweep import (
    default_market_config,
    mtbf_market_scenario,
    run_market_sweep,
)
from repro.market import Marketplace, SyntheticSpec, market_job_stream

# -- one big market ------------------------------------------------------------
N_USERS = 1_000_000
N_JOBS = 100_000

specs = [
    SyntheticSpec("risky", capacity=96.0, admission="greedy",
                  mtbf=86_400.0, mttr=3_600.0),
    SyntheticSpec("steady", capacity=96.0, admission="deadline"),
]
market = Marketplace(specs, n_users=N_USERS, seed=0)
t0 = time.perf_counter()
market.run(market_job_stream(N_JOBS, seed=0))
wall = time.perf_counter() - t0

print(f"{N_USERS:,} users, {N_JOBS:,} jobs in {wall:.1f}s "
      f"({2 * N_JOBS / wall:,.0f} user events/sec)\n")
for row in market.summary_rows():
    print(f"  {row['provider']:<8} final share {row['final_share']:.3f}  "
          f"revenue {row['revenue']:,.0f}  "
          f"loyal users {row['loyal_users']:,}")

# -- the risk sweep ------------------------------------------------------------
print("\nSweeping the risky provider's MTBF (smaller population, same story):\n")
result = run_market_sweep(
    default_market_config(n_users=10_000, n_jobs=10_000),
    scenario=mtbf_market_scenario((None, 86_400.0, 14_400.0, 3_600.0)),
)
print(result.table())
